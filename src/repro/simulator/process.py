"""Simulated processes and their syscall vocabulary.

A simulated program is a Python generator function ``program(proc)`` that
yields *syscall* objects; the engine interprets each syscall, advances
virtual time, and resumes the generator.  Function attribution uses an
explicit stack managed by the :meth:`SimProcess.function` context manager —
the stack is examined at every yield point, so ``with`` blocks inside the
generator attribute time exactly like real call frames:

.. code-block:: python

    def program(proc):
        with proc.function("oned.f", "main"):
            for _ in range(iterations):
                with proc.function("sweep.f", "sweep1d"):
                    yield Compute(0.8)
                with proc.function("exchng1.f", "exchng1"):
                    yield Send(up, "1/0", 8192)
                    yield Recv(down, "1/0")
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator, Iterator, List, Optional, Tuple

from .errors import ProgramError

__all__ = [
    "Compute",
    "Send",
    "Isend",
    "Recv",
    "Irecv",
    "WaitReq",
    "IoOp",
    "Barrier",
    "Request",
    "Syscall",
    "ProcState",
    "SimProcess",
]


# --------------------------------------------------------------------------
# Syscalls
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Compute:
    """Burn *seconds* of CPU time (stretched by instrumentation overhead)."""

    seconds: float


@dataclass(frozen=True)
class Send:
    """Blocking-buffered send: the sender pays a small CPU overhead and the
    message arrives at *dest* after the network transfer time."""

    dest: str
    tag: str
    size: float = 0.0


@dataclass(frozen=True)
class Isend:
    """Non-blocking send; resumes with a completed :class:`Request`."""

    dest: str
    tag: str
    size: float = 0.0


@dataclass(frozen=True)
class Recv:
    """Blocking receive; blocked time is synchronisation waiting time
    attributed to the current function and the message tag."""

    src: str
    tag: str


@dataclass(frozen=True)
class Irecv:
    """Non-blocking receive; resumes immediately with a :class:`Request`."""

    src: str
    tag: str


@dataclass(frozen=True)
class WaitReq:
    """Block until *request* completes (MPI_Wait analogue)."""

    request: "Request"


@dataclass(frozen=True)
class IoOp:
    """Blocking I/O of *seconds* (ExcessiveIOBlockingTime signal)."""

    seconds: float


@dataclass(frozen=True)
class Barrier:
    """Global barrier over every process in the engine."""

    name: str = "Barrier"


Syscall = (Compute, Send, Isend, Recv, Irecv, WaitReq, IoOp, Barrier)


class Request:
    """Handle for a non-blocking operation."""

    __slots__ = ("src", "tag", "complete", "message")

    def __init__(self, src: str, tag: str):
        self.src = src
        self.tag = tag
        self.complete = False
        self.message = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "complete" if self.complete else "pending"
        return f"Request({self.src!r}, {self.tag!r}, {state})"


class ProcState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    CRASHED = "crashed"


class _StackSnap(tuple):
    """A canonical (interned) stack snapshot.

    One instance exists per distinct stack per process (see
    :meth:`SimProcess.stack_snapshot`), so identity comparison suffices
    to detect "same stack".  The engine's fast path hangs its segment
    prototypes directly off the snapshot in :attr:`protos` (one cell per
    activity code) — the snapshot *is* the cache key, so a hit is one
    attribute load and one index, with no validation.  Equality, hashing
    and repr are inherited from ``tuple``: a ``TimeSegment.stack``
    holding a snapshot is indistinguishable from one holding the plain
    tuple the legacy path builds.  (No ``__slots__``: variable-length
    bases forbid them; snapshots are few, the instance dict is cheap.)
    """

    def __reduce__(self):  # pickle as a plain tuple
        return (tuple, (tuple(self),))


def _new_snap(frames: tuple) -> "_StackSnap":
    snap = _StackSnap(frames)
    snap.protos = [None, None, None]
    return snap


class _FunctionFrame:
    """Context manager pushing/popping one (module, function) frame."""

    __slots__ = ("_proc", "_frame", "_saved")

    def __init__(self, proc: "SimProcess", module: str, function: str):
        self._proc = proc
        self._frame = (module, function)

    def __enter__(self) -> None:
        # remember the pre-push snapshot so __exit__ can restore it:
        # popping restores exactly the stack the snapshot was taken of
        self._saved = self._proc._stack_tuple
        self._proc._stack.append(self._frame)
        self._proc._stack_tuple = None

    def __exit__(self, exc_type, exc, tb) -> None:
        top = self._proc._stack.pop()
        self._proc._stack_tuple = self._saved
        if top != self._frame:  # pragma: no cover - defensive
            raise ProgramError(
                f"function stack corruption in {self._proc.name}: "
                f"popped {top}, expected {self._frame}"
            )


class SimProcess:
    """One simulated application process bound to a machine node."""

    def __init__(self, name: str, node: str, program) -> None:
        self.name = name
        self.node = node
        self.program = program
        self.state = ProcState.READY
        self.gen: Optional[Generator] = None
        self._stack: List[Tuple[str, str]] = []
        # Memoised canonical snapshot of ``_stack``; invalidated on every
        # frame push/pop and restored on pop.  A process emits many
        # segments per frame transition, so snapshots in the engine's
        # emission hot path are almost always cache hits.
        self._stack_tuple: Optional[_StackSnap] = _new_snap(())
        # Interned snapshots: one canonical _StackSnap per distinct
        # stack, so re-entering a frame in a loop yields the *same*
        # snapshot object and the prototype cells riding on it (see
        # _StackSnap) keep hitting.
        self._snap_intern: dict = {(): self._stack_tuple}
        # Blocking-receive want and pending wait request, always present
        # so the engine reads them without getattr.
        self._recv_want: Optional[Tuple[str, str]] = None
        self._wait_req: Optional[Request] = None
        # Set while blocked: (activity tag for SYNC, block start, stack top).
        self.block_start: float = 0.0
        self.block_tag: Optional[str] = None
        self.block_frame: Tuple[str, str] = ("?", "?")
        self.finish_time: Optional[float] = None
        #: The exception that killed the process (crash_policy="record").
        self.crash: Optional[BaseException] = None
        #: Frozen by an injected hang fault: never stepped again.
        self.hung: bool = False

    # -- program-facing API --------------------------------------------------
    def function(self, module: str, function: str) -> _FunctionFrame:
        """Enter an attributed function frame (see module docstring)."""
        return _FunctionFrame(self, module, function)

    @property
    def current_frame(self) -> Tuple[str, str]:
        """Innermost (module, function), for exclusive time attribution."""
        if not self._stack:
            return ("<unknown>", "<toplevel>")
        return self._stack[-1]

    @property
    def depth(self) -> int:
        return len(self._stack)

    def stack_snapshot(self) -> Tuple[Tuple[str, str], ...]:
        """The full (module, function) stack, outermost first."""
        snap = self._stack_tuple
        if snap is None:
            raw = tuple(self._stack)
            intern = self._snap_intern
            snap = intern.get(raw)
            if snap is None:
                if len(intern) >= 1024:  # bounded like the parts cache
                    intern.clear()
                snap = _new_snap(raw)
                intern[raw] = snap
            self._stack_tuple = snap
        return snap

    # -- engine-facing API -----------------------------------------------------
    def start(self) -> None:
        if self.gen is not None:
            raise ProgramError(f"process {self.name} started twice")
        gen = self.program(self)
        if not isinstance(gen, Iterator):
            raise ProgramError(
                f"program of {self.name} must be a generator function"
            )
        self.gen = gen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimProcess({self.name!r} on {self.node!r}, {self.state.value})"
