"""Resource naming substrate: hierarchies, resources, and foci.

This package implements the program-representation layer of Paradyn that
the paper's Performance Consultant searches over (paper, Section 2):
resource hierarchies (``Code``, ``Machine``, ``Process``, ``SyncObject``),
canonical slash-separated resource names, and foci with single-edge
refinement.
"""

from .names import (
    ResourceNameError,
    common_prefix,
    depth,
    hierarchy_of,
    is_prefix,
    join_path,
    parent_path,
    split_path,
    validate_path,
)
from .resource import (
    STANDARD_HIERARCHIES,
    Resource,
    ResourceHierarchy,
    ResourceSpace,
)
from .focus import Focus, parse_focus, whole_program

__all__ = [
    "ResourceNameError",
    "common_prefix",
    "depth",
    "hierarchy_of",
    "is_prefix",
    "join_path",
    "parent_path",
    "split_path",
    "validate_path",
    "STANDARD_HIERARCHIES",
    "Resource",
    "ResourceHierarchy",
    "ResourceSpace",
    "Focus",
    "parse_focus",
    "whole_program",
]
