"""Canonical resource-name handling.

Paradyn names every program resource by the unique path from the root of
its resource hierarchy to the node representing the resource, with path
components joined by ``/``.  For example ``/Code/testutil.C/verifyA`` names
the function ``verifyA`` inside module ``testutil.C`` in the ``Code``
hierarchy (paper, Section 2 and Figure 1).

This module centralises parsing, validation, and prefix tests so the rest
of the system can treat resource names as opaque strings while the matching
machinery works on pre-split tuples (tuple-prefix comparison is the hot
path of instrumentation matching).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = [
    "ResourceNameError",
    "split_path",
    "join_path",
    "hierarchy_of",
    "parent_path",
    "is_prefix",
    "depth",
    "validate_path",
]

PathTuple = Tuple[str, ...]


class ResourceNameError(ValueError):
    """Raised for malformed resource names."""


def split_path(path: str) -> PathTuple:
    """Split ``/Code/a.c/f`` into ``("Code", "a.c", "f")``.

    Raises :class:`ResourceNameError` for names that do not start with a
    slash or contain empty components.
    """
    if not isinstance(path, str) or not path.startswith("/"):
        raise ResourceNameError(f"resource name must start with '/': {path!r}")
    body = path[1:]
    if body == "":
        raise ResourceNameError("the bare root '/' does not name a hierarchy")
    parts = tuple(body.split("/"))
    if any(p == "" for p in parts):
        raise ResourceNameError(f"resource name has empty component: {path!r}")
    return parts


def join_path(parts: Sequence[str]) -> str:
    """Inverse of :func:`split_path`."""
    if not parts:
        raise ResourceNameError("cannot join an empty component list")
    if any((not p) or ("/" in p) for p in parts):
        raise ResourceNameError(f"invalid components: {parts!r}")
    return "/" + "/".join(parts)


def hierarchy_of(path: str) -> str:
    """Return the hierarchy name (first component) of a resource name."""
    return split_path(path)[0]


def parent_path(path: str) -> str:
    """Return the parent resource's name.

    The parent of a hierarchy root (``/Code``) is an error: roots have no
    parent within the naming scheme.
    """
    parts = split_path(path)
    if len(parts) == 1:
        raise ResourceNameError(f"hierarchy root has no parent: {path!r}")
    return join_path(parts[:-1])


def is_prefix(ancestor: str, descendant: str) -> bool:
    """True if *ancestor* names the same resource as *descendant* or one of
    its ancestors (selection semantics: selecting a node includes all leaf
    descendants, paper Section 2)."""
    a = split_path(ancestor)
    d = split_path(descendant)
    return d[: len(a)] == a


def depth(path: str) -> int:
    """Number of components; a hierarchy root has depth 1."""
    return len(split_path(path))


def validate_path(path: str) -> str:
    """Validate and return *path* unchanged (raises on malformed input)."""
    split_path(path)
    return path


def common_prefix(paths: Iterable[str]) -> str | None:
    """Longest common ancestor of the given resource names, or ``None`` if
    they live in different hierarchies or the iterable is empty."""
    tuples = [split_path(p) for p in paths]
    if not tuples:
        return None
    first = tuples[0]
    n = min(len(t) for t in tuples)
    out = []
    for i in range(n):
        c = first[i]
        if all(t[i] == c for t in tuples):
            out.append(c)
        else:
            break
    if not out:
        return None
    return join_path(out)
