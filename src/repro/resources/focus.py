"""Foci: constrained views of a program.

A *focus* selects one node from each resource hierarchy; selecting a root
leaves that hierarchy unconstrained while any deeper selection narrows the
view to the leaf descendants of the chosen node (paper, Section 2).  The
whole-program focus selects every root:
``< /Code, /Machine, /Process, /SyncObject >``.

A *child focus* is obtained by moving down a single edge in one hierarchy;
deriving children this way is *refinement* — the operation the Performance
Consultant applies to every node that tests true.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from .names import ResourceNameError, split_path
from .resource import STANDARD_HIERARCHIES, ResourceSpace

__all__ = ["Focus", "whole_program", "parse_focus"]


class Focus:
    """Immutable selection of one resource per hierarchy.

    Instances hash and compare by value so they can key dictionaries (the
    Search History Graph deduplicates nodes by ``(hypothesis, focus)``).
    """

    __slots__ = ("_sel", "_parts", "_hash")

    def __init__(self, selections: Mapping[str, str]):
        sel: Dict[str, str] = {}
        parts: Dict[str, Tuple[str, ...]] = {}
        for hierarchy, path in selections.items():
            p = split_path(path)
            if p[0] != hierarchy:
                raise ResourceNameError(
                    f"selection {path!r} is not in hierarchy {hierarchy!r}"
                )
            sel[hierarchy] = path
            parts[hierarchy] = p
        self._sel = dict(sorted(sel.items()))
        self._parts = parts
        self._hash = hash(tuple(self._sel.items()))

    # -- basic protocol ----------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return isinstance(other, Focus) and self._sel == other._sel

    def __repr__(self) -> str:
        return f"Focus({str(self)!r})"

    def __str__(self) -> str:
        return "< " + ", ".join(self._sel[h] for h in self._sel) + " >"

    # -- accessors ----------------------------------------------------------
    @property
    def hierarchies(self) -> Tuple[str, ...]:
        return tuple(self._sel)

    def selection(self, hierarchy: str) -> str:
        return self._sel[hierarchy]

    def selection_parts(self, hierarchy: str) -> Tuple[str, ...]:
        return self._parts[hierarchy]

    def selections(self) -> Dict[str, str]:
        return dict(self._sel)

    def is_whole_program(self) -> bool:
        return all(len(p) == 1 for p in self._parts.values())

    def depth(self) -> int:
        """Total number of refinement edges below the whole-program focus."""
        return sum(len(p) - 1 for p in self._parts.values())

    # -- algebra -------------------------------------------------------------
    def with_selection(self, hierarchy: str, path: str) -> "Focus":
        sel = dict(self._sel)
        if hierarchy not in sel:
            raise ResourceNameError(f"focus has no hierarchy {hierarchy!r}")
        sel[hierarchy] = path
        return Focus(sel)

    def constrains(self, hierarchy: str) -> bool:
        """True when the selection in *hierarchy* is below the root."""
        return len(self._parts[hierarchy]) > 1

    def is_descendant_or_equal(self, other: "Focus") -> bool:
        """True when every selection of *self* lies at or below the
        corresponding selection of *other*."""
        if set(self._sel) != set(other._sel):
            return False
        for h, mine in self._parts.items():
            theirs = other._parts[h]
            if mine[: len(theirs)] != theirs:
                return False
        return True

    def matches_parts(self, segment_parts: Mapping[str, Tuple[str, ...] | None]) -> bool:
        """Match against a time segment's per-hierarchy resource paths.

        *segment_parts* maps hierarchy name to the split path of the
        resource the segment is attributed to, or ``None`` when the segment
        carries no resource in that hierarchy (e.g. a pure-compute segment
        has no SyncObject).  A constrained hierarchy with no segment
        resource does not match; an unconstrained one always matches.
        """
        for h, want in self._parts.items():
            if len(want) == 1:
                continue
            have = segment_parts.get(h)
            if have is None or have[: len(want)] != want:
                return False
        return True

    # -- refinement ----------------------------------------------------------
    def refine(self, space: ResourceSpace, hierarchy: str) -> List["Focus"]:
        """Child foci obtained by one step down in *hierarchy*."""
        sel = self._sel.get(hierarchy)
        if sel is None:
            return []
        node = space.hierarchy(hierarchy).find(sel)
        if node is None:
            return []
        return [self.with_selection(hierarchy, c.name) for c in node.children.values()]

    def children(self, space: ResourceSpace) -> List["Focus"]:
        """All child foci across every hierarchy (paper: refinement moves
        down along a single edge in one of the resource hierarchies)."""
        out: List["Focus"] = []
        for h in self._sel:
            out.extend(self.refine(space, h))
        return out


def whole_program(space: ResourceSpace | None = None) -> Focus:
    """The unconstrained focus over the standard (or given) hierarchies."""
    if space is None:
        return Focus({h: f"/{h}" for h in STANDARD_HIERARCHIES})
    return Focus(space.root_paths())


def parse_focus(text: str) -> Focus:
    """Parse the printed form ``< /Code/x, /Machine, ... >``."""
    body = text.strip()
    if body.startswith("<"):
        body = body[1:]
    if body.endswith(">"):
        body = body[:-1]
    sels: Dict[str, str] = {}
    for piece in body.split(","):
        piece = piece.strip()
        if not piece:
            continue
        parts = split_path(piece)
        if parts[0] in sels:
            raise ResourceNameError(f"duplicate hierarchy in focus: {text!r}")
        sels[parts[0]] = piece
    if not sels:
        raise ResourceNameError(f"empty focus: {text!r}")
    return Focus(sels)
