"""Resource hierarchies.

A program is represented as a collection of discrete *resources* organised
into trees called *resource hierarchies* (paper, Section 2): ``Code``
(modules and functions), ``Machine`` (nodes), ``Process`` (application
processes), and ``SyncObject`` (synchronisation points such as message
tags).  Each hierarchy has a labelled root, and each deeper level is a
finer-grained description of the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .names import ResourceNameError, join_path, split_path

__all__ = ["Resource", "ResourceHierarchy", "ResourceSpace", "STANDARD_HIERARCHIES"]

#: Hierarchy names used throughout the reproduction (Paradyn's defaults).
STANDARD_HIERARCHIES = ("Code", "Machine", "Process", "SyncObject")


@dataclass
class Resource:
    """One node of a resource hierarchy.

    ``name`` is the full canonical resource name (e.g.
    ``/Code/testutil.C/verifyA``); ``label`` is the final path component.
    ``tags`` carries optional execution identifiers used when rendering
    combined hierarchies from several runs (paper, Figure 3).
    """

    name: str
    label: str
    parent: Optional["Resource"] = None
    children: Dict[str, "Resource"] = field(default_factory=dict)
    tags: set = field(default_factory=set)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def depth(self) -> int:
        return len(split_path(self.name))

    def child(self, label: str) -> "Resource":
        return self.children[label]

    def walk(self) -> Iterator["Resource"]:
        """Pre-order traversal of this subtree (children in insertion order)."""
        yield self
        for c in self.children.values():
            yield from c.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.name!r})"


class ResourceHierarchy:
    """A single tree of resources rooted at ``/<name>``."""

    def __init__(self, name: str):
        if "/" in name or not name:
            raise ResourceNameError(f"bad hierarchy name: {name!r}")
        self.name = name
        self.root = Resource(name=f"/{name}", label=name)
        self._by_name: Dict[str, Resource] = {self.root.name: self.root}

    def add(self, path: str, tag: object | None = None) -> Resource:
        """Add (or fetch) the resource named *path*, creating intermediate
        nodes as needed.  *tag* is attached to every node on the path."""
        parts = split_path(path)
        if parts[0] != self.name:
            raise ResourceNameError(
                f"resource {path!r} does not belong to hierarchy {self.name!r}"
            )
        node = self.root
        if tag is not None:
            node.tags.add(tag)
        for i in range(1, len(parts)):
            label = parts[i]
            nxt = node.children.get(label)
            if nxt is None:
                nxt = Resource(
                    name=join_path(parts[: i + 1]), label=label, parent=node
                )
                node.children[label] = nxt
                self._by_name[nxt.name] = nxt
            if tag is not None:
                nxt.tags.add(tag)
            node = nxt
        return node

    def find(self, path: str) -> Optional[Resource]:
        return self._by_name.get(path)

    def __contains__(self, path: str) -> bool:
        return path in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def names(self) -> List[str]:
        """All resource names in the hierarchy, pre-order."""
        return [r.name for r in self.root.walk()]

    def leaves(self) -> List[Resource]:
        return [r for r in self.root.walk() if r.is_leaf]

    def children_of(self, path: str) -> List[Resource]:
        node = self.find(path)
        if node is None:
            return []
        return list(node.children.values())

    def merge(self, other: "ResourceHierarchy", tag_self=None, tag_other=None) -> "ResourceHierarchy":
        """Return a new hierarchy containing the union of both trees, with
        nodes tagged by origin (used for Figure 3's combined view)."""
        if other.name != self.name:
            raise ResourceNameError(
                f"cannot merge hierarchy {other.name!r} into {self.name!r}"
            )
        out = ResourceHierarchy(self.name)
        for name in self.names():
            out.add(name, tag=tag_self)
        for name in other.names():
            out.add(name, tag=tag_other)
        return out


class ResourceSpace:
    """The full set of resource hierarchies describing one program run.

    ``version`` increments whenever a new resource is added, so consumers
    (notably the Performance Consultant's late-discovery rescan) can
    detect growth cheaply — resources may be discovered mid-run, e.g. a
    message tag first used late in the execution.
    """

    def __init__(self, hierarchy_names=STANDARD_HIERARCHIES):
        self.hierarchies: Dict[str, ResourceHierarchy] = {
            n: ResourceHierarchy(n) for n in hierarchy_names
        }
        self.version = 0

    def hierarchy(self, name: str) -> ResourceHierarchy:
        try:
            return self.hierarchies[name]
        except KeyError:
            raise ResourceNameError(f"unknown hierarchy: {name!r}") from None

    def add(self, path: str, tag: object | None = None) -> Resource:
        parts = split_path(path)
        hierarchy = self.hierarchy(parts[0])
        before = len(hierarchy)
        node = hierarchy.add(path, tag=tag)
        if len(hierarchy) != before:
            self.version += 1
        return node

    def find(self, path: str) -> Optional[Resource]:
        parts = split_path(path)
        h = self.hierarchies.get(parts[0])
        return None if h is None else h.find(path)

    def __contains__(self, path: str) -> bool:
        return self.find(path) is not None

    def names(self) -> List[str]:
        out: List[str] = []
        for h in self.hierarchies.values():
            out.extend(h.names())
        return out

    def root_paths(self) -> Dict[str, str]:
        """Mapping hierarchy name -> its root resource name."""
        return {n: f"/{n}" for n in self.hierarchies}

    def copy(self) -> "ResourceSpace":
        out = ResourceSpace(tuple(self.hierarchies))
        for name in self.names():
            out.add(name)
        return out

    def process_machine_bijection(self) -> bool:
        """True when processes and machine nodes map one-to-one, the MPI-1
        static-process situation the paper uses to justify pruning the
        machine hierarchy (Section 3.1)."""
        procs = self.hierarchy("Process").leaves()
        nodes = self.hierarchy("Machine").leaves()
        proc_leaves = [p for p in procs if p.depth > 1]
        node_leaves = [n for n in nodes if n.depth > 1]
        return len(proc_leaves) == len(node_leaves) and len(proc_leaves) > 0
