#!/usr/bin/env python
"""Quickstart: diagnose a parallel application, then diagnose it faster.

This walks the paper's core loop on the 2-D Poisson solver (version C):

1. run the Performance Consultant undirected (the "single button" mode);
2. harvest search directives — prunes and priorities — from that run;
3. run a second, *directed* diagnosis and compare the time needed to
   locate the same bottlenecks.

It uses the stable facade API: ``repro.diagnose`` runs a session,
``repro.harvest`` extracts directives, and ``history=`` feeds them back.
"""

from repro import (
    PoissonConfig,
    SearchConfig,
    build_poisson,
    diagnose,
    harvest,
)
from repro.analysis import base_bottleneck_set, reduction, time_to_fraction
from repro.visualize import render_shg
from repro.core.shg import NodeState

# a shortened workload so the example runs in a few seconds
CFG = PoissonConfig(iterations=300)
SEARCH = SearchConfig()
SEARCH_STOP = SearchConfig(stop_engine_when_done=True)


def main() -> None:
    print("== 1. undirected diagnosis (no prior knowledge) ==")
    base = diagnose(build_poisson("C", CFG), config=SEARCH)
    solid = base_bottleneck_set(base, margin=0.075)
    base_times = time_to_fraction(base, solid)
    print(f"   bottlenecks found : {base.bottleneck_count()}")
    print(f"   pairs tested      : {base.pairs_tested}")
    print(f"   time to find all  : {base_times[1.0]:.0f} simulated seconds")

    print("\n== 2. harvest directives from the stored run ==")
    directives = harvest(base).without_pair_prunes()
    print(f"   prunes     : {len(directives.prunes)}")
    print(f"   priorities : {len(directives.priorities)}")
    print("   sample directive lines:")
    for line in directives.to_text().splitlines()[:5]:
        print(f"     {line}")

    print("\n== 3. directed diagnosis of a new run ==")
    directed = diagnose(
        build_poisson("C", CFG), history=directives, config=SEARCH_STOP
    )
    directed_times = time_to_fraction(directed, solid)
    print(f"   pairs tested      : {directed.pairs_tested}")
    print(f"   time to find all  : {directed_times[1.0]:.0f} simulated seconds")
    print(
        f"   reduction         : {reduction(base_times[1.0], directed_times[1.0]):+.1f}%"
    )

    print("\n== top of the directed Search History Graph ==")
    print(render_shg(directed.shg(), max_depth=1, states=[NodeState.TRUE, NodeState.FALSE]))


if __name__ == "__main__":
    main()
