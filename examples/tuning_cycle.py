#!/usr/bin/env python
"""The profile-analyze-change tuning cycle across code versions.

Section 4.3 of the paper: "While tuning an application, a developer
repeats through a cycle of profile-analyze-change."  This example plays
that cycle over the four Poisson versions — A (1-D blocking), B (1-D
non-blocking), C (2-D), D (2-D on 8 nodes) — storing each diagnosis in an
experiment store and reusing the previous version's directives, with
resource mapping bridging the renamed modules/functions (Figure 3) and
the differently named machine nodes.
"""

import tempfile

from repro import (
    DirectiveSet,
    ExperimentStore,
    PoissonConfig,
    SearchConfig,
    build_poisson,
    extract_directives,
    run_diagnosis,
    version_maps,
)
from repro.analysis import base_bottleneck_set, reduction, time_to_fraction
from repro.core import ResourceMapper

CFG = PoissonConfig(iterations=300)
VERSIONS = ("A", "B", "C", "D")


def main() -> None:
    store = ExperimentStore(tempfile.mkdtemp(prefix="repro-tuning-"))
    previous = None  # (version label, Application)

    for version in VERSIONS:
        app = build_poisson(version, CFG)
        print(f"== version {version}: {app.description} ==")

        # Undirected reference run (defines this version's bottleneck set).
        base = run_diagnosis(app, config=SearchConfig(), run_id=f"cycle-{version}-base")
        store.save(base)
        solid = base_bottleneck_set(base, margin=0.075)
        base_t = time_to_fraction(base, solid)[1.0]
        print(f"   undirected: {base_t:7.0f} s to find {len(solid)} bottlenecks "
              f"({base.pairs_tested} pairs tested)")

        if previous is not None:
            prev_version, prev_app = previous
            prior = store.load(f"cycle-{prev_version}-base")
            directives = extract_directives(prior).without_pair_prunes()
            maps = version_maps(prev_version, version, prev_app, app)
            directives = directives.merged_with(DirectiveSet(maps=maps))
            directed = run_diagnosis(
                build_poisson(version, CFG),
                directives=directives,
                config=SearchConfig(stop_engine_when_done=True),
                run_id=f"cycle-{version}-directed",
            )
            store.save(directed)
            t = time_to_fraction(directed, solid, mapper=ResourceMapper(maps))[1.0]
            print(f"   directed (history from {prev_version}): {t:7.0f} s "
                  f"({reduction(base_t, t):+.1f}%, {directed.pairs_tested} pairs)")
        previous = (version, app)

    print("\nruns stored:", ", ".join(store.list()))


if __name__ == "__main__":
    main()
