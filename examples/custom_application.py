#!/usr/bin/env python
"""Diagnosing your own simulated application.

Shows the full public surface a downstream user needs:

* writing a message-passing program as generator coroutines;
* declaring its static resources in an :class:`~repro.Application`;
* running the Performance Consultant on it;
* writing directives by hand in the text format and re-diagnosing.

The example program is a two-stage pipeline in which stage 2 starves on
stage 1's output — a classic producer/consumer imbalance the Consultant
pinpoints down to the message tag.
"""

from repro import Application, DirectiveSet, SearchConfig, run_diagnosis
from repro.simulator import Compute, IoOp, Recv, Send
from repro.visualize import render_shg
from repro.core.shg import NodeState

ITEMS = 250


def producer(proc):
    with proc.function("pipe.c", "produce"):
        for _ in range(ITEMS):
            with proc.function("pipe.c", "cook"):
                yield Compute(1.0)      # slow stage
            yield Send("stage:2", "7/0", 4096)


def consumer(proc):
    with proc.function("pipe.c", "consume"):
        for _ in range(ITEMS):
            yield Recv("stage:1", "7/0")
            with proc.function("pipe.c", "serve"):
                yield Compute(0.25)     # fast stage starves
        with proc.function("pipe.c", "flush"):
            yield IoOp(2.0)


def build_pipeline() -> Application:
    return Application(
        name="pipeline",
        version="1",
        modules={"pipe.c": ("produce", "cook", "consume", "serve", "flush")},
        tags=("7/0",),
        processes=("stage:1", "stage:2"),
        placement={"stage:1": "hostA", "stage:2": "hostB"},
        programs={"stage:1": producer, "stage:2": consumer},
        description="two-stage producer/consumer pipeline",
    )


DIRECTIVES_TEXT = """
# hand-written directives: we already know the consumer starves, so look
# there first, and skip the flush I/O entirely
priority high ExcessiveSyncWaitingTime < /Code/pipe.c/consume, /Machine, /Process/stage:2, /SyncObject >
prune * /Code/pipe.c/flush
threshold ExcessiveSyncWaitingTime 0.25
"""


def main() -> None:
    print("== undirected diagnosis of the pipeline ==")
    base = run_diagnosis(build_pipeline(), config=SearchConfig())
    print(render_shg(base.shg(), states=[NodeState.TRUE]))
    print(f"\n   pairs tested: {base.pairs_tested}, "
          f"bottlenecks: {base.bottleneck_count()}")

    print("\n== directed diagnosis with hand-written directives ==")
    directives = DirectiveSet.from_text(DIRECTIVES_TEXT)
    directed = run_diagnosis(
        build_pipeline(), directives=directives,
        config=SearchConfig(stop_engine_when_done=True),
    )
    starving = [
        (n["focus"], n["t_concluded"])
        for n in directed.shg_nodes
        if n["state"] == "true" and "stage:2" in n["focus"]
    ]
    first = min(starving, key=lambda x: x[1])
    print(f"   consumer starvation confirmed at t={first[1]:.0f}s: {first[0]}")
    print(f"   pairs tested: {directed.pairs_tested} "
          f"(vs {base.pairs_tested} undirected)")


if __name__ == "__main__":
    main()
