#!/usr/bin/env python
"""Using history that did not come from the Performance Consultant.

The paper's future work (Section 6) imagines extracting search directives
from "results gathered with different monitoring tools" and automating
resource mapping. This example plays that full scenario:

1. version A of the Poisson solver runs under a *plain tracer* (no
   Performance Consultant attached) — the kind of raw trace any
   monitoring tool could produce;
2. the trace is aggregated into a postmortem profile, hypotheses are
   evaluated offline, and search directives are extracted from raw data
   alone;
3. version B (renamed modules!) is about to be diagnosed: the mapping
   between A's and B's resources is *suggested automatically* from the
   two runs' structure and behaviour;
4. B's diagnosis runs directed by the foreign-history directives.
"""

import tempfile
from pathlib import Path

from repro import (
    DirectiveSet,
    PoissonConfig,
    SearchConfig,
    build_poisson,
    run_diagnosis,
)
from repro.analysis import base_bottleneck_set, reduction, time_to_fraction
from repro.core.automap import suggest_mappings
from repro.core.postmortem import extract_directives_postmortem
from repro.metrics.profile import ProfileCollector
from repro.simulator import TraceWriter, profile_from_trace

CFG = PoissonConfig(iterations=300)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-foreign-"))
    trace_path = workdir / "versionA.trace"

    print("== 1. run version A under a plain tracer (no Consultant) ==")
    app_a = build_poisson("A", CFG)
    engine = app_a.make_engine()
    with TraceWriter(trace_path) as writer:
        engine.add_sink(writer)
        finish = engine.run()
    print(f"   {writer.count} trace records, {finish:.0f} simulated seconds")

    print("\n== 2. postmortem: profile the trace, extract directives ==")
    profile_a = profile_from_trace(trace_path)
    space_a = app_a.make_space()
    directives = extract_directives_postmortem(
        profile_a, space_a, dict(app_a.placement), include_pair_prunes=False
    )
    print(f"   {len(directives.priorities)} priorities, "
          f"{len(directives.prunes)} prunes from raw data alone")

    print("\n== 3. automatic resource mapping A -> B ==")
    app_b = build_poisson("B", CFG)
    profile_b_collector = ProfileCollector()
    probe_engine = app_b.make_engine()
    probe_engine.add_sink(profile_b_collector)
    probe_engine.run()  # a quick profiling run of B for behavioural matching
    suggestions = suggest_mappings(
        {name: h.names() for name, h in space_a.hierarchies.items()},
        {name: h.names() for name, h in app_b.make_space().hierarchies.items()},
        old_profile=profile_a,
        new_profile=profile_b_collector.profile,
    )
    for s in suggestions:
        print(f"   {s.as_line()}")
    maps = [s.directive for s in suggestions]
    # tag families 1/x stay 1/x between A and B, so no tag maps appear

    print("\n== 4. diagnose version B, directed by the foreign history ==")
    base_b = run_diagnosis(build_poisson("B", CFG), config=SearchConfig())
    solid = base_bottleneck_set(base_b, margin=0.075)
    base_t = time_to_fraction(base_b, solid)[1.0]

    directed = run_diagnosis(
        build_poisson("B", CFG),
        directives=directives.merged_with(DirectiveSet(maps=maps)),
        config=SearchConfig(stop_engine_when_done=True),
    )
    directed_t = time_to_fraction(directed, solid)[1.0]
    print(f"   undirected: {base_t:7.0f} s   ({base_b.pairs_tested} pairs)")
    print(f"   directed  : {directed_t:7.0f} s   ({directed.pairs_tested} pairs, "
          f"{reduction(base_t, directed_t):+.1f}%)")


if __name__ == "__main__":
    main()
