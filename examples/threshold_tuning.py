#!/usr/bin/env python
"""Application-specific thresholds from historical data.

Section 4.2 of the paper: the useful synchronisation threshold differs
between applications (12% for the MPI Poisson code, ~20% for the PVM
ocean model), "showing the advantage of application-specific historical
performance data".  This example sweeps thresholds over both workloads,
scores each run against the application's significant-area checklist, and
compares the sweep's knee with the threshold suggested automatically from
one stored run.
"""

from repro import (
    OceanConfig,
    PoissonConfig,
    SearchConfig,
    build_ocean,
    build_poisson,
    extract_thresholds,
    run_diagnosis,
)
from repro.analysis import (
    areas_reported,
    optimal_threshold,
    significant_areas,
    threshold_point,
)

SYNC = "ExcessiveSyncWaitingTime"
THRESHOLDS = (0.30, 0.25, 0.20, 0.15, 0.12, 0.10)


def sweep(name, make_app):
    print(f"== {name} ==")
    base = run_diagnosis(make_app(), config=SearchConfig())
    areas = significant_areas(
        base.flat_profile(), base.placement,
        min_fraction=0.10, per_process_min=0.30, combo_min=0.08,
    )
    points = []
    for th in THRESHOLDS:
        rec = run_diagnosis(
            make_app(),
            config=SearchConfig(
                stop_engine_when_done=True, threshold_overrides={SYNC: th}
            ),
        )
        hits = areas_reported(rec, areas)
        n = sum(1 for v in hits.values() if v > 0)
        points.append(threshold_point(rec, th, areas_reported=n))
        print(f"   threshold {th:4.0%}: {n:2d}/{len(areas)} areas, "
              f"{rec.pairs_tested:4d} pairs tested")
    knee = optimal_threshold(points, full_count=len(areas))
    suggested = {
        t.hypothesis: t.value for t in extract_thresholds([base])
    }.get(SYNC)
    print(f"   sweep knee (largest complete threshold): {knee:.0%}")
    print(f"   history-suggested threshold            : {suggested:.0%}\n")
    return knee


def main() -> None:
    poisson_knee = sweep(
        "2-D Poisson (MPI), version C",
        lambda: build_poisson("C", PoissonConfig(iterations=300)),
    )
    ocean_knee = sweep(
        "ocean circulation (PVM style)",
        lambda: build_ocean(OceanConfig(iterations=300)),
    )
    print(f"the useful threshold is application-specific: "
          f"poisson {poisson_knee:.0%} vs ocean {ocean_knee:.0%}")


if __name__ == "__main__":
    main()
