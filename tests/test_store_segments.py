"""The sharded index: segment append, compaction, and crash safety.

The file backend's save path appends sealed segment files instead of
rewriting the whole index; compaction folds them into a new base
generation.  These tests pin the segment lifecycle, the auto-compaction
policy, every intermediate crash state of the compaction protocol, and
survival of a real SIGKILL landing mid-write/mid-compaction.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.storage import ExperimentStore, RunRecord
from repro.storage.file_backend import FileBackend


def _tiny_record(run_id: str, version: str = "1") -> RunRecord:
    return RunRecord(
        run_id=run_id,
        app_name="seg",
        version=version,
        n_processes=1,
        nodes=["n0"],
        placement={"p0": "n0"},
        hierarchies={"Code": ["/Code"]},
        shg_nodes=[],
        profile={},
        finish_time=1.0,
        search_done_time=None,
        pairs_tested=0,
        total_requests=0,
        peak_cost=0.0,
    )


class TestSegmentLifecycle:
    def test_each_save_appends_one_segment(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", auto_compact=0)
        for i in range(5):
            store.save(_tiny_record(f"r{i}"))
            assert store.info().segments == i + 1
        # base untouched: all five live only in segments
        base = json.loads((tmp_path / "runs" / "index.json").read_text())
        assert base["runs"] == {}
        assert len(store) == 5

    def test_compact_folds_and_bumps_generation(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", auto_compact=0)
        for i in range(4):
            store.save(_tiny_record(f"r{i}"))
        before = store.summaries()
        stats = store.compact()
        assert stats.segments_folded == 4
        assert stats.entries == 4
        assert stats.generation == 1
        assert store.info().segments == 0
        assert store.summaries() == before
        # a second compaction folds nothing but keeps counting generations
        assert store.compact().generation == 2

    def test_auto_compact_threshold(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", auto_compact=3)
        store.save(_tiny_record("r0"))
        store.save(_tiny_record("r1"))
        assert store.info().segments == 2
        store.save(_tiny_record("r2"))  # hits the threshold -> inline fold
        assert store.info().segments == 0
        assert store.info().generation == 1
        assert len(store) == 3

    def test_background_compaction_runs_off_thread(self, tmp_path):
        store = ExperimentStore(
            tmp_path / "runs", auto_compact=2, background_compaction=True
        )
        store.save(_tiny_record("r0"))
        store.save(_tiny_record("r1"))
        thread = store._compaction_thread
        assert thread is not None
        thread.join(timeout=30)
        assert store.info().segments == 0
        assert set(store.list()) == {"r0", "r1"}

    def test_fresh_reader_sees_unfolded_segments(self, tmp_path):
        writer = ExperimentStore(tmp_path / "runs", auto_compact=0)
        for i in range(3):
            writer.save(_tiny_record(f"r{i}"))
        reader = ExperimentStore(tmp_path / "runs")
        assert set(reader.list()) == {"r0", "r1", "r2"}
        assert all(
            meta["summary"]["status"] == "complete"
            for meta in reader.summaries().values()
        )

    def test_delete_is_a_segment_op(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", auto_compact=0)
        store.save(_tiny_record("keep"))
        store.save(_tiny_record("drop"))
        store.delete("drop")
        assert store.list() == ["keep"]
        assert ExperimentStore(tmp_path / "runs").list() == ["keep"]
        store.compact()
        assert ExperimentStore(tmp_path / "runs").list() == ["keep"]


class TestCompactionCrashStates:
    """The compaction protocol is: (1) write the new base via atomic
    rename, (2) delete the folded segments, (3) bump the state
    generation.  A crash after any prefix must leave the merged view
    unchanged for every later reader."""

    def _store_with_segments(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", auto_compact=0)
        for i in range(4):
            store.save(_tiny_record(f"r{i}"))
        return store, store.summaries()

    def test_crash_after_base_write(self, tmp_path):
        store, view = self._store_with_segments(tmp_path)
        backend = store.backend
        # step (1) only: new base written, segments still on disk
        backend._write_base(backend.read_merged(), generation=1)
        assert ExperimentStore(tmp_path / "runs").summaries() == view

    def test_crash_mid_segment_deletion(self, tmp_path):
        store, view = self._store_with_segments(tmp_path)
        backend = store.backend
        backend._write_base(backend.read_merged(), generation=1)
        # step (2) interrupted: only some folded segments deleted
        survivors = backend._segment_names()
        os.unlink(tmp_path / "runs" / "segments" / survivors[0])
        os.unlink(tmp_path / "runs" / "segments" / survivors[2])
        assert ExperimentStore(tmp_path / "runs").summaries() == view

    def test_crash_before_state_bump_then_write(self, tmp_path):
        store, view = self._store_with_segments(tmp_path)
        backend = store.backend
        backend._write_base(backend.read_merged(), generation=1)
        for name in backend._segment_names():
            os.unlink(tmp_path / "runs" / "segments" / name)
        # step (3) never ran: the stale state file must not clash with
        # the next writer
        after = ExperimentStore(tmp_path / "runs")
        assert after.summaries() == view
        after.save(_tiny_record("r4"))
        seqs = sorted(m["seq"] for m in after._read_index().values())
        assert seqs == [0, 1, 2, 3, 4]

    def test_rebuild_recovers_from_arbitrary_wreckage(self, tmp_path):
        store, _view = self._store_with_segments(tmp_path)
        (tmp_path / "runs" / "index.json").write_text('{"format": 3')
        for name in list(store.backend._segment_names())[:2]:
            (tmp_path / "runs" / "segments" / name).write_text("garbage")
        report = ExperimentStore(tmp_path / "runs").rebuild_index()
        assert sorted(report.kept) == ["r0", "r1", "r2", "r3"]
        fresh = ExperimentStore(tmp_path / "runs")
        assert sorted(fresh.list()) == ["r0", "r1", "r2", "r3"]
        assert fresh.info().segments == 0


def _churn(root, stop_after):
    """Child: save + compact in a tight loop until killed."""
    store = ExperimentStore(root, auto_compact=2)
    for i in range(stop_after):
        store.save(_tiny_record(f"churn-{i:04d}"))


class TestSigkillMidCompaction:
    def test_store_survives_sigkill_and_rebuild_recovers(self, tmp_path):
        root = tmp_path / "runs"
        seed = ExperimentStore(root, auto_compact=0)
        seed.save(_tiny_record("seed"))
        ctx = multiprocessing.get_context()
        child = ctx.Process(target=_churn, args=(root, 2000))
        child.start()
        # let it get through some save/compact cycles, then kill it cold
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            stored = len(list(root.glob("churn-*.json")))
            if stored >= 6:
                break
            time.sleep(0.002)
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert stored >= 6

        # readable without any repair, whatever instant the kill hit
        survivor = ExperimentStore(root)
        ids = survivor.list()
        assert "seed" in ids
        for run_id in ids:
            assert survivor.load(run_id).run_id == run_id

        # rebuild recovers every record file on disk, including any whose
        # index op the kill swallowed
        report = survivor.rebuild_index()
        on_disk = {p.stem for p in root.glob("*.json")} - {"index"}
        assert set(report.kept) == on_disk
        assert report.quarantined == []
        fresh = ExperimentStore(root)
        assert set(fresh.list()) == on_disk
        seqs = sorted(m["seq"] for m in fresh._read_index().values())
        assert seqs == list(range(len(on_disk)))


def _segment_writer(root, worker, barrier, n_records):
    store = ExperimentStore(root, auto_compact=0)
    barrier.wait()
    for i in range(n_records):
        store.save(_tiny_record(f"w{worker}-r{i}"))


def _compactor(root, barrier, rounds):
    store = ExperimentStore(root, auto_compact=0)
    barrier.wait()
    for _ in range(rounds):
        store.compact()


class TestConcurrentSegmentWriters:
    N_WRITERS = 4
    RECORDS_EACH = 6

    def test_compaction_racing_writers_loses_nothing(self, tmp_path):
        root = tmp_path / "runs"
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(self.N_WRITERS + 1)
        procs = [
            ctx.Process(
                target=_segment_writer,
                args=(root, w, barrier, self.RECORDS_EACH),
            )
            for w in range(self.N_WRITERS)
        ]
        procs.append(ctx.Process(target=_compactor, args=(root, barrier, 8)))
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs)

        store = ExperimentStore(root)
        expected = {
            f"w{w}-r{i}"
            for w in range(self.N_WRITERS)
            for i in range(self.RECORDS_EACH)
        }
        assert set(store.list()) == expected
        seqs = sorted(m["seq"] for m in store._read_index().values())
        assert seqs == list(range(len(expected)))
        for run_id in expected:
            assert store.load(run_id).run_id == run_id
