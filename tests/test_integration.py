"""End-to-end integration tests: the paper's workflow at small scale.

These run the full pipeline — undirected base diagnosis, storage round
trip, directive extraction, mapped directed re-diagnosis — on shortened
Poisson configurations, and assert the paper's qualitative claims.
"""

import pytest

from repro.analysis import base_bottleneck_set, reduction, time_to_fraction
from repro.analysis.bottlenecks import canonical_pairs
from repro.apps.poisson import PoissonConfig, build_poisson, version_maps
from repro.core import (
    ResourceMapper,
    SearchConfig,
    extract_directives,
    run_diagnosis,
)
from repro.storage import ExperimentStore

CFG = PoissonConfig(iterations=260)
SC = SearchConfig(
    min_interval=15.0, check_period=1.0, insertion_latency=1.0, cost_limit=8.0
)
SC_STOP = SearchConfig(
    min_interval=15.0, check_period=1.0, insertion_latency=1.0, cost_limit=8.0,
    stop_engine_when_done=True,
)


@pytest.fixture(scope="module")
def base_c():
    return run_diagnosis(build_poisson("C", CFG), config=SC, run_id="it-base-C")


class TestDirectedDiagnosis:
    def test_base_finds_sync_bottlenecks(self, base_c):
        assert base_c.bottleneck_count() > 10
        hyps = {h for h, _ in base_c.true_pairs()}
        assert "ExcessiveSyncWaitingTime" in hyps

    def test_directed_run_is_faster(self, base_c):
        base_set = base_bottleneck_set(base_c, margin=0.075)
        base_times = time_to_fraction(base_c, base_set)
        ds = extract_directives(base_c).without_pair_prunes()
        directed = run_diagnosis(build_poisson("C", CFG), directives=ds, config=SC_STOP)
        directed_times = time_to_fraction(directed, base_set)
        assert directed_times[1.0] < base_times[1.0]
        assert reduction(base_times[1.0], directed_times[1.0]) < -30.0

    def test_directed_run_finds_whole_scored_set(self, base_c):
        base_set = base_bottleneck_set(base_c, margin=0.075)
        ds = extract_directives(base_c).without_pair_prunes()
        directed = run_diagnosis(build_poisson("C", CFG), directives=ds, config=SC_STOP)
        found = set(canonical_pairs(directed.true_pairs(), directed.placement))
        assert base_set <= found

    def test_directed_uses_less_instrumentation(self, base_c):
        ds = extract_directives(base_c)  # includes pair prunes
        directed = run_diagnosis(
            build_poisson("C", CFG), directives=ds.only("prunes", "pair_prunes"),
            config=SC_STOP,
        )
        assert directed.pairs_tested < base_c.pairs_tested / 2


class TestStorageWorkflow:
    def test_roundtrip_through_store(self, base_c, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(base_c)
        loaded = store.load("it-base-C")
        ds_live = extract_directives(base_c)
        ds_stored = extract_directives(loaded)
        assert ds_live.to_text() == ds_stored.to_text()


class TestCrossVersion:
    def test_a_directives_speed_up_b(self):
        cfg = PoissonConfig(iterations=260)
        app_a = build_poisson("A", cfg)
        base_a = run_diagnosis(app_a, config=SC)
        app_b = build_poisson("B", cfg)
        base_b = run_diagnosis(build_poisson("B", cfg), config=SC)
        base_set_b = base_bottleneck_set(base_b, margin=0.075)
        times_b = time_to_fraction(base_b, base_set_b)

        ds = extract_directives(base_a).without_pair_prunes()
        maps = version_maps("A", "B", app_a, app_b)
        ds = ds.merged_with(type(ds)(maps=maps))
        directed = run_diagnosis(build_poisson("B", cfg), directives=ds, config=SC_STOP)
        directed_times = time_to_fraction(directed, base_set_b)
        # cross-version directives still cut diagnosis time (Table 3 claim)
        assert directed_times[1.0] < times_b[1.0]

    def test_directive_text_roundtrip_with_maps(self):
        cfg = PoissonConfig(iterations=120)
        app_a = build_poisson("A", cfg)
        base_a = run_diagnosis(app_a, config=SC)
        ds = extract_directives(base_a)
        from repro.core import DirectiveSet

        clone = DirectiveSet.from_text(ds.to_text())
        assert len(clone) == len(ds)
