"""Tests for the experiment store and run-record round-trips."""

import pytest

from repro.apps.synthetic import make_pingpong
from repro.core import SearchConfig, run_diagnosis
from repro.metrics import CostModel
from repro.storage import ExperimentStore, RunRecord, StoreError

FAST = SearchConfig(min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0)


@pytest.fixture(scope="module")
def record():
    app = make_pingpong(iterations=60)
    return run_diagnosis(
        app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0), run_id="pp-base"
    )


class TestRunRecordRoundtrip:
    def test_dict_roundtrip_equal(self, record):
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()

    def test_roundtrip_preserves_queries(self, record):
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.true_pairs() == record.true_pairs()
        assert clone.found_times() == record.found_times()
        assert clone.pairs_tested == record.pairs_tested
        assert clone.placement == record.placement

    def test_space_reconstruction(self, record):
        space = record.space()
        assert "/Code/pp.c/work" in space
        assert "/SyncObject/Message/9/0" in space

    def test_shg_reconstruction(self, record):
        shg = record.shg()
        assert len(shg) == len(record.shg_nodes)

    def test_efficiency(self, record):
        assert record.efficiency() == pytest.approx(
            record.bottleneck_count() / record.pairs_tested
        )

    def test_time_to_find_all(self, record):
        assert record.time_to_find_all() == max(record.found_times().values())


class TestExperimentStore:
    def test_save_and_load(self, tmp_path, record):
        store = ExperimentStore(tmp_path / "runs")
        store.save(record)
        loaded = store.load("pp-base")
        assert loaded.to_dict() == record.to_dict()

    def test_duplicate_save_rejected(self, tmp_path, record):
        store = ExperimentStore(tmp_path / "runs")
        store.save(record)
        with pytest.raises(StoreError):
            store.save(record)
        store.save(record, overwrite=True)  # explicit overwrite allowed

    def test_load_missing(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        with pytest.raises(StoreError):
            store.load("nope")

    def test_contains_and_len(self, tmp_path, record):
        store = ExperimentStore(tmp_path / "runs")
        assert "pp-base" not in store
        store.save(record)
        assert "pp-base" in store
        assert len(store) == 1

    def test_list_filters(self, tmp_path, record):
        store = ExperimentStore(tmp_path / "runs")
        store.save(record)
        other = RunRecord.from_dict(record.to_dict())
        other.run_id = "pp-2"
        other.version = "2"
        store.save(other)
        assert store.list() == ["pp-base", "pp-2"]
        assert store.list(version="2") == ["pp-2"]
        assert store.list(app_name="pingpong") == ["pp-base", "pp-2"]
        assert store.list(app_name="other") == []

    def test_latest(self, tmp_path, record):
        store = ExperimentStore(tmp_path / "runs")
        store.save(record)
        other = RunRecord.from_dict(record.to_dict())
        other.run_id = "pp-2"
        store.save(other)
        assert store.latest("pingpong").run_id == "pp-2"
        assert store.latest("ghost") is None

    def test_delete(self, tmp_path, record):
        store = ExperimentStore(tmp_path / "runs")
        store.save(record)
        store.delete("pp-base")
        assert "pp-base" not in store
        assert store.list() == []
        store.delete("pp-base")  # idempotent

    def test_load_all(self, tmp_path, record):
        store = ExperimentStore(tmp_path / "runs")
        store.save(record)
        recs = store.load_all(["pp-base"])
        assert len(recs) == 1 and recs[0].run_id == "pp-base"

    def test_persists_across_instances(self, tmp_path, record):
        ExperimentStore(tmp_path / "runs").save(record)
        again = ExperimentStore(tmp_path / "runs")
        assert "pp-base" in again
        assert again.list() == ["pp-base"]


class TestSequenceNumbers:
    def _clones(self, record, *run_ids):
        out = []
        for run_id in run_ids:
            clone = RunRecord.from_dict(record.to_dict())
            clone.run_id = run_id
            out.append(clone)
        return out

    def _seqs(self, store):
        return {rid: meta["seq"] for rid, meta in store._read_index().items()}

    def test_overwrite_preserves_seq(self, tmp_path, record):
        store = ExperimentStore(tmp_path / "runs")
        a, b, c = self._clones(record, "a", "b", "c")
        for rec in (a, b, c):
            store.save(rec)
        before = self._seqs(store)
        store.save(a, overwrite=True)
        after = self._seqs(store)
        assert after == before  # regression: overwrite used to get seq=len(index)
        assert sorted(after.values()) == [0, 1, 2]
        assert store.list() == ["a", "b", "c"]

    def test_seq_monotonic_after_delete(self, tmp_path, record):
        store = ExperimentStore(tmp_path / "runs")
        a, b, c = self._clones(record, "a", "b", "c")
        store.save(a)
        store.save(b)
        store.delete("a")
        store.save(c)
        seqs = self._seqs(store)
        assert seqs["c"] > seqs["b"]  # never reuses a live seq
        assert store.list() == ["b", "c"]
