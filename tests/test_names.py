"""Unit tests for resource-name handling."""

import pytest

from repro.resources.names import (
    ResourceNameError,
    common_prefix,
    depth,
    hierarchy_of,
    is_prefix,
    join_path,
    parent_path,
    split_path,
    validate_path,
)


class TestSplitPath:
    def test_simple(self):
        assert split_path("/Code") == ("Code",)

    def test_nested(self):
        assert split_path("/Code/testutil.C/verifyA") == ("Code", "testutil.C", "verifyA")

    def test_missing_leading_slash(self):
        with pytest.raises(ResourceNameError):
            split_path("Code/foo")

    def test_bare_root_rejected(self):
        with pytest.raises(ResourceNameError):
            split_path("/")

    def test_empty_component(self):
        with pytest.raises(ResourceNameError):
            split_path("/Code//foo")

    def test_trailing_slash_rejected(self):
        with pytest.raises(ResourceNameError):
            split_path("/Code/foo/")

    def test_non_string(self):
        with pytest.raises(ResourceNameError):
            split_path(None)

    def test_negative_tag_components(self):
        # message tag 3/-1 nests as two components
        assert split_path("/SyncObject/Message/3/-1") == ("SyncObject", "Message", "3", "-1")


class TestJoinPath:
    def test_roundtrip(self):
        for p in ("/Code", "/Code/a.c/f", "/SyncObject/Message/3/-1"):
            assert join_path(split_path(p)) == p

    def test_empty(self):
        with pytest.raises(ResourceNameError):
            join_path(())

    def test_component_with_slash(self):
        with pytest.raises(ResourceNameError):
            join_path(("Code", "a/b"))

    def test_empty_component(self):
        with pytest.raises(ResourceNameError):
            join_path(("Code", ""))


class TestHierarchyAndParent:
    def test_hierarchy_of(self):
        assert hierarchy_of("/Machine/node08") == "Machine"

    def test_parent(self):
        assert parent_path("/Code/a.c/f") == "/Code/a.c"

    def test_parent_of_module(self):
        assert parent_path("/Code/a.c") == "/Code"

    def test_parent_of_root_fails(self):
        with pytest.raises(ResourceNameError):
            parent_path("/Code")


class TestIsPrefix:
    def test_equal(self):
        assert is_prefix("/Code/a.c", "/Code/a.c")

    def test_ancestor(self):
        assert is_prefix("/Code", "/Code/a.c/f")

    def test_not_prefix(self):
        assert not is_prefix("/Code/a.c", "/Code/b.c")

    def test_component_boundary(self):
        # "/Code/a" is not a prefix of "/Code/ab"
        assert not is_prefix("/Code/a", "/Code/ab")

    def test_descendant_not_ancestor(self):
        assert not is_prefix("/Code/a.c/f", "/Code/a.c")


class TestDepthValidate:
    def test_depth(self):
        assert depth("/Code") == 1
        assert depth("/Code/a.c/f") == 3

    def test_validate_returns_input(self):
        assert validate_path("/Process/p:1") == "/Process/p:1"

    def test_validate_raises(self):
        with pytest.raises(ResourceNameError):
            validate_path("bogus")


class TestCommonPrefix:
    def test_shared_module(self):
        assert common_prefix(["/Code/a.c/f", "/Code/a.c/g"]) == "/Code/a.c"

    def test_shared_hierarchy_only(self):
        assert common_prefix(["/Code/a.c/f", "/Code/b.c"]) == "/Code"

    def test_different_hierarchies(self):
        assert common_prefix(["/Code/a.c", "/Machine/n0"]) is None

    def test_empty(self):
        assert common_prefix([]) is None

    def test_single(self):
        assert common_prefix(["/Code/a.c"]) == "/Code/a.c"
