"""Tests for the Search History Graph."""

import pytest

from repro.core.shg import NodeState, Priority, SearchHistoryGraph, SHGNode
from repro.resources import Focus, whole_program

SYNC = "ExcessiveSyncWaitingTime"


def f(code="/Code"):
    return whole_program().with_selection("Code", code)


class TestAddAndDedup:
    def test_add_creates(self):
        shg = SearchHistoryGraph()
        node, created = shg.add(SYNC, f())
        assert created
        assert len(shg) == 1

    def test_dedup_same_pair(self):
        shg = SearchHistoryGraph()
        a, _ = shg.add(SYNC, f())
        b, created = shg.add(SYNC, f())
        assert not created
        assert a is b

    def test_dag_multiple_parents(self):
        shg = SearchHistoryGraph()
        root, _ = shg.add("TopLevelHypothesis", f())
        p1, _ = shg.add(SYNC, f("/Code/a.c"), parent=root)
        p2, _ = shg.add(SYNC, f("/Code/b.c"), parent=root)
        child, created = shg.add(SYNC, f("/Code/a.c/x"), parent=p1)
        child2, created2 = shg.add(SYNC, f("/Code/a.c/x"), parent=p2)
        assert child is child2 and not created2
        assert child.parents == {p1.node_id, p2.node_id}
        assert child.node_id in p1.children and child.node_id in p2.children

    def test_different_hypothesis_distinct(self):
        shg = SearchHistoryGraph()
        shg.add(SYNC, f())
        shg.add("CPUbound", f())
        assert len(shg) == 2

    def test_find(self):
        shg = SearchHistoryGraph()
        node, _ = shg.add(SYNC, f())
        assert shg.find(SYNC, f()) is node
        assert shg.find("CPUbound", f()) is None

    def test_self_parent_ignored(self):
        shg = SearchHistoryGraph()
        node, _ = shg.add(SYNC, f())
        again, _ = shg.add(SYNC, f(), parent=node)
        assert node.parents == set()


class TestQueries:
    def make(self):
        shg = SearchHistoryGraph()
        a, _ = shg.add(SYNC, f("/Code/a.c"))
        a.state = NodeState.TRUE
        a.t_requested = 1.0
        a.t_concluded = 10.0
        b, _ = shg.add(SYNC, f("/Code/b.c"))
        b.state = NodeState.FALSE
        b.t_requested = 1.0
        c, _ = shg.add(SYNC, f("/Code/c.c"))
        c.state = NodeState.PRUNED
        return shg

    def test_by_state(self):
        shg = self.make()
        assert len(shg.by_state(NodeState.TRUE)) == 1
        assert len(shg.by_state(NodeState.PRUNED)) == 1

    def test_true_nodes(self):
        shg = self.make()
        assert [n.focus.selection("Code") for n in shg.true_nodes()] == ["/Code/a.c"]

    def test_tested_count_excludes_pruned(self):
        shg = self.make()
        assert shg.tested_count() == 2

    def test_state_counts(self):
        shg = self.make()
        assert shg.state_counts() == {"true": 1, "false": 1, "pruned": 1}

    def test_roots(self):
        shg = SearchHistoryGraph()
        root, _ = shg.add("TopLevelHypothesis", f())
        shg.add(SYNC, f(), parent=root)
        assert shg.roots() == [root]


class TestSerialization:
    def test_roundtrip(self):
        shg = SearchHistoryGraph()
        root, _ = shg.add("TopLevelHypothesis", f())
        root.state = NodeState.TRUE
        child, _ = shg.add(SYNC, f("/Code/a.c"), parent=root, priority=Priority.HIGH)
        child.persistent = True
        child.value = 0.42
        child.t_requested = 1.0
        child.t_concluded = 12.0
        child.state = NodeState.TRUE
        clone = SearchHistoryGraph.from_dicts(shg.to_dicts())
        assert len(clone) == 2
        c = clone.find(SYNC, f("/Code/a.c"))
        assert c.persistent and c.priority is Priority.HIGH
        assert c.value == pytest.approx(0.42)
        assert c.state is NodeState.TRUE
        assert c.parents == {root.node_id}

    def test_roundtrip_preserves_next_id(self):
        shg = SearchHistoryGraph()
        shg.add(SYNC, f())
        clone = SearchHistoryGraph.from_dicts(shg.to_dicts())
        node, created = clone.add("CPUbound", f())
        assert created
        assert node.node_id == 1


class TestPriorityEnum:
    def test_order(self):
        assert Priority.HIGH < Priority.MEDIUM < Priority.LOW

    def test_parse(self):
        assert Priority.parse("high") is Priority.HIGH
        assert Priority.parse("LOW") is Priority.LOW
        with pytest.raises(KeyError):
            Priority.parse("urgent")

    def test_str(self):
        assert str(Priority.MEDIUM) == "medium"
