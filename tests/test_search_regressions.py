"""Regression tests for search-state correctness fixes.

Covers three historical bugs:

* persistent pairs concluded TRUE could never flip back to FALSE when
  the bottleneck disappeared (the flip logic was one-directional);
* a lost instrumentation sample on an already-concluded pair wiped the
  conclusion to UNKNOWN, silently dropping a confirmed bottleneck from
  extraction;
* ``storage.query._fraction`` resolved resource names by scanning the
  profile tables in a fixed order, so a name shared between hierarchies
  could silently read the wrong table (see ``test_query_dispatch``).
"""

import pytest

from repro.core import SearchConfig
from repro.core.search import PerformanceConsultantSearch
from repro.core.shg import NodeState
from repro.metrics import CostModel, InstrumentationManager
from repro.obs import Tracer
from repro.resources import ResourceSpace, whole_program
from repro.simulator import Compute, Engine, LatencyModel, Machine

SYNC = "ExcessiveSyncWaitingTime"
LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)
NOISE = 0.04


def build_search():
    eng = Engine(Machine.named("n", 1), latency=LAT)
    space = ResourceSpace()
    space.add("/Code/a.c/f")
    space.add("/Process/p:1")
    space.add("/Machine/n0")

    def prog(proc):
        with proc.function("a.c", "f"):
            for _ in range(40):
                yield Compute(1.0)

    eng.add_process("p:1", "n0", prog)
    config = SearchConfig(
        min_interval=5.0, check_period=0.5, insertion_latency=0.2,
        cost_limit=50.0, noise_band=NOISE,
    )
    instr = InstrumentationManager(
        eng, space, cost_model=CostModel(perturb_per_unit=0.0),
        cost_limit=config.cost_limit, insertion_latency=0.2,
    )
    search = PerformanceConsultantSearch(
        eng, instr, space, config=config, tracer=Tracer(),
    )
    search.start()
    return eng, search


def persistent_node(search, state, handle=999):
    node = search.shg.find(SYNC, whole_program(search.space))
    node.persistent = True
    node.state = state
    node.t_concluded = 1.0
    node.value = 0.5
    node.handle = handle
    # Hand-forced transition: register with the incrementally maintained
    # watch set the way _expand would have.
    search._watch(node)
    return node


class TestPersistentFlip:
    def test_true_flips_back_to_false(self):
        eng, search = build_search()
        node = persistent_node(search, NodeState.TRUE)
        threshold = search.threshold(SYNC)
        search.instr.normalized_read = lambda h: (threshold - NOISE - 0.05, 100.0)
        search._evaluate_active(min_interval=5.0)
        assert node.state is NodeState.FALSE
        assert node.t_concluded == eng.now
        flips = search.tracer.events("node-flip")
        assert len(flips) == 1
        assert flips[0].data["from"] == "true"
        assert flips[0].data["to"] == "false"

    def test_false_flips_to_true(self):
        _, search = build_search()
        node = persistent_node(search, NodeState.FALSE)
        threshold = search.threshold(SYNC)
        search.instr.normalized_read = lambda h: (threshold + NOISE + 0.05, 100.0)
        search._evaluate_active(min_interval=5.0)
        assert node.state is NodeState.TRUE

    def test_flip_down_needs_to_clear_noise_band(self):
        """A value hovering just inside the hysteresis band never flips."""
        _, search = build_search()
        node = persistent_node(search, NodeState.TRUE)
        threshold = search.threshold(SYNC)
        search.instr.normalized_read = lambda h: (threshold - NOISE / 2, 100.0)
        search._evaluate_active(min_interval=5.0)
        assert node.state is NodeState.TRUE
        assert not search.tracer.events("node-flip")

    def test_flip_up_needs_to_clear_noise_band(self):
        _, search = build_search()
        node = persistent_node(search, NodeState.FALSE)
        threshold = search.threshold(SYNC)
        search.instr.normalized_read = lambda h: (threshold + NOISE / 2, 100.0)
        search._evaluate_active(min_interval=5.0)
        assert node.state is NodeState.FALSE

    def test_flip_to_true_refines(self):
        """A re-appearing bottleneck re-enters the refinement frontier."""
        _, search = build_search()
        node = persistent_node(search, NodeState.FALSE)
        threshold = search.threshold(SYNC)
        before = len(list(search.shg))
        search.instr.normalized_read = lambda h: (threshold + NOISE + 0.05, 100.0)
        search._evaluate_active(min_interval=5.0)
        assert node.state is NodeState.TRUE
        assert len(list(search.shg)) > before  # children queued


class TestLostSample:
    def raising_read(self, handle):
        raise KeyError(handle)

    def test_concluded_pair_keeps_conclusion(self):
        _, search = build_search()
        node = persistent_node(search, NodeState.TRUE)
        search.instr.normalized_read = self.raising_read
        search._evaluate_active(min_interval=5.0)
        assert node.state is NodeState.TRUE  # conclusion survives
        assert node.quality == "lost instrumentation sample"
        assert node.handle is None  # the watch is gone, though
        lost = search.tracer.events("node-sample-lost")
        assert [e.data["node"] for e in lost] == [node.node_id]
        assert not search.tracer.events("node-unknown")

    def test_concluded_false_pair_also_kept(self):
        _, search = build_search()
        node = persistent_node(search, NodeState.FALSE)
        search.instr.normalized_read = self.raising_read
        search._evaluate_active(min_interval=5.0)
        assert node.state is NodeState.FALSE

    def test_undecided_pair_goes_unknown(self):
        _, search = build_search()
        node = search.shg.find(SYNC, whole_program(search.space))
        node.state = NodeState.ACTIVE
        node.handle = 999
        search._watch(node)
        search.instr.normalized_read = self.raising_read
        search._evaluate_active(min_interval=5.0)
        assert node.state is NodeState.UNKNOWN
        assert node.quality == "lost instrumentation sample"
        assert search.tracer.events("node-unknown")

    def test_lost_sample_survives_replay(self):
        """The trace round-trips the kept conclusion, not UNKNOWN."""
        from repro.obs import replay_conclusions

        _, search = build_search()
        node = persistent_node(search, NodeState.TRUE)
        # Replay needs the lifecycle prefix the live search would have
        # emitted before our hand-forced conclusion.
        search.tracer.emit(
            "node-concluded", node=node.node_id, state="true",
            value=0.5, threshold=search.threshold(SYNC),
        )
        search.instr.normalized_read = self.raising_read
        search._evaluate_active(min_interval=5.0)
        states = replay_conclusions(search.tracer.events())
        assert states[(SYNC, str(whole_program(search.space)))] == "true"
