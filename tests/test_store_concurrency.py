"""Concurrent-writer stress tests for the experiment store.

N processes save records into one store simultaneously; the locked index
merge must keep every entry, assign unique monotonic ``seq`` values, and
leave every record file loadable.
"""

import multiprocessing

import pytest

from repro.storage import ExperimentStore, RunRecord

N_PROCS = 6
RECORDS_EACH = 5


def _tiny_record(run_id: str, version: str = "1") -> RunRecord:
    return RunRecord(
        run_id=run_id,
        app_name="stress",
        version=version,
        n_processes=1,
        nodes=["n0"],
        placement={"p0": "n0"},
        hierarchies={"Code": ["/Code"]},
        shg_nodes=[],
        profile={},
        finish_time=1.0,
        search_done_time=None,
        pairs_tested=0,
        total_requests=0,
        peak_cost=0.0,
    )


def _writer(root, worker, barrier):
    store = ExperimentStore(root)
    barrier.wait()  # maximise overlap: all workers start saving at once
    for i in range(RECORDS_EACH):
        store.save(_tiny_record(f"w{worker}-r{i}"))


def test_concurrent_writers_lose_nothing(tmp_path):
    root = tmp_path / "runs"
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(N_PROCS)
    procs = [
        ctx.Process(target=_writer, args=(root, worker, barrier))
        for worker in range(N_PROCS)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
    assert all(p.exitcode == 0 for p in procs)

    store = ExperimentStore(root)
    expected = {f"w{w}-r{i}" for w in range(N_PROCS) for i in range(RECORDS_EACH)}
    assert len(store) == len(expected)
    assert set(store.list()) == expected
    index = store._read_index()
    seqs = sorted(meta["seq"] for meta in index.values())
    assert seqs == list(range(len(expected)))  # unique, gapless, monotonic
    for run_id in expected:
        assert store.load(run_id).run_id == run_id


def test_concurrent_store_creation(tmp_path):
    """Racing __init__ must not clobber an index another process wrote."""
    root = tmp_path / "runs"
    ready = ExperimentStore(root)
    ready.save(_tiny_record("keeper"))
    # a second instance opening the same directory must keep the entry
    again = ExperimentStore(root)
    assert again.list() == ["keeper"]


def test_rebuild_index_recovers_lost_entries(tmp_path):
    root = tmp_path / "runs"
    store = ExperimentStore(root)
    for i in range(3):
        store.save(_tiny_record(f"r{i}"))
    # simulate total index loss: base generation and all segments
    (root / "index.json").write_text("{}")
    for seg in (root / "segments").glob("*.json"):
        seg.unlink()
    assert ExperimentStore(root).list() == []
    report = store.rebuild_index()
    assert report.count == 3
    assert sorted(report.kept) == ["r0", "r1", "r2"]
    assert report.quarantined == []
    assert set(store.list()) == {"r0", "r1", "r2"}
    seqs = sorted(m["seq"] for m in store._read_index().values())
    assert seqs == [0, 1, 2]


def test_rebuild_preserves_existing_seq(tmp_path):
    store = ExperimentStore(tmp_path / "runs")
    for i in range(3):
        store.save(_tiny_record(f"r{i}"))
    before = {rid: m["seq"] for rid, m in store._read_index().items()}
    store.rebuild_index()
    after = {rid: m["seq"] for rid, m in store._read_index().items()}
    assert after == before


def test_concurrent_writers_all_have_summaries(tmp_path):
    """Every entry landed by racing writers carries its query summary —
    the locked merge must not drop another process's format-3 metadata."""
    root = tmp_path / "runs"
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(N_PROCS)
    procs = [
        ctx.Process(target=_writer, args=(root, worker, barrier))
        for worker in range(N_PROCS)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
    assert all(p.exitcode == 0 for p in procs)

    store = ExperimentStore(root)
    metas = store.summaries()
    assert len(metas) == N_PROCS * RECORDS_EACH
    for meta in metas.values():
        assert meta["summary"]["status"] == "complete"


def _overwriter(root, version, barrier):
    store = ExperimentStore(root)
    barrier.wait()
    rec = _tiny_record("shared", version=version)
    store.save(rec, overwrite=True)


def test_cross_process_overwrite_never_serves_stale_record(tmp_path):
    """A reader that cached the record before another process overwrote
    it must re-read: record body, index summary, and cache agree."""
    root = tmp_path / "runs"
    reader = ExperimentStore(root)
    reader.save(_tiny_record("shared", version="old"))
    assert reader.load("shared").version == "old"  # now cached

    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(1)
    p = ctx.Process(target=_overwriter, args=(root, "new", barrier))
    p.start()
    p.join(timeout=60)
    assert p.exitcode == 0

    assert reader.load("shared").version == "new"
    assert reader.summaries(run_ids=["shared"])["shared"]["version"] == "new"
