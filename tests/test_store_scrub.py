"""The store scrub (``repro store verify`` / ``ExperimentStore.verify``):
clean stores, corrupt payloads, divergent summaries, missing payloads,
and orphaned record files."""

import json

import pytest

from repro.storage import ExperimentStore, RunRecord

BACKENDS = ("file", "file-legacy", "sqlite")


def _record(run_id: str, tag: int = 0) -> RunRecord:
    return RunRecord(
        run_id=run_id,
        app_name="scrub",
        version="1",
        n_processes=1,
        nodes=["n0"],
        placement={"p0": "n0"},
        hierarchies={"Code": ["/Code"]},
        shg_nodes=[],
        profile={},
        finish_time=1.0 + tag,
        search_done_time=None,
        pairs_tested=tag,
        total_requests=tag,
        peak_cost=float(tag),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_clean_store_verifies(tmp_path, backend):
    store = ExperimentStore(tmp_path / "runs", backend=backend)
    for i in range(3):
        store.save(_record(f"r{i}", i))
    report = store.verify()
    assert report.clean
    assert report.checked == 3
    assert report.ok == 3
    assert report.backend == backend
    assert "3 record(s): 3 ok" in str(report)
    assert report.to_dict()["clean"] is True


def test_empty_store_is_clean(tmp_path):
    report = ExperimentStore(tmp_path / "runs").verify()
    assert report.clean and report.checked == 0


def test_corrupt_payload_reported_and_quarantined(tmp_path):
    store = ExperimentStore(tmp_path / "runs", cache_size=0)
    store.save(_record("r0"))
    store.save(_record("r1", 1))
    (tmp_path / "runs" / "r0.json").write_text("}}} torn {{{")
    report = store.verify()
    assert not report.clean
    assert [run_id for run_id, _ in report.corrupt] == ["r0"]
    assert report.ok == 1
    assert report.quarantined  # the bytes were preserved, not dropped
    assert "repro store rebuild" in str(report)


def test_missing_payload_reported(tmp_path):
    store = ExperimentStore(tmp_path / "runs", cache_size=0)
    store.save(_record("r0"))
    (tmp_path / "runs" / "r0.json").unlink()
    report = store.verify()
    assert report.missing == ["r0"]
    assert not report.clean


def test_summary_divergence_detected(tmp_path):
    """The overwrite-crash window: payload updated, index summary stale."""
    store = ExperimentStore(tmp_path / "runs", cache_size=0)
    store.save(_record("r0"))
    store.compact()  # fold segments so the base index is the whole truth
    merged = store.backend.read_merged()
    stale = dict(merged["r0"])
    stale["summary"] = dict(stale["summary"], peak_cost=999.0)
    store.backend._write_base(dict(merged, r0=stale))
    report = ExperimentStore(tmp_path / "runs", cache_size=0).verify()
    assert report.summary_divergent == ["r0"]
    assert not report.clean


def test_orphan_reported_but_benign(tmp_path):
    store = ExperimentStore(tmp_path / "runs")
    store.save(_record("r0"))
    payload = json.loads((tmp_path / "runs" / "r0.json").read_text())
    (tmp_path / "runs" / "ghost.json").write_text(json.dumps(payload))
    report = store.verify()
    assert report.orphans == ["ghost.json"]
    assert report.clean  # orphans never fail the scrub


def test_invalid_record_reported(tmp_path):
    """A checksum-valid envelope around a malformed record body."""
    from repro.storage.file_backend import _checksum

    store = ExperimentStore(tmp_path / "runs", backend="sqlite", cache_size=0)
    store.save(_record("r0"))
    truncated = {"run_id": "r0"}
    backend = store.backend
    backend._conn.execute("BEGIN IMMEDIATE")
    backend._conn.execute(
        "UPDATE runs SET payload = ?, sha256 = ? WHERE run_id = 'r0'",
        (json.dumps(truncated), _checksum(truncated)),
    )
    backend._conn.execute("COMMIT")
    report = ExperimentStore(
        tmp_path / "runs", backend="sqlite", cache_size=0
    ).verify()
    assert [run_id for run_id, _ in report.invalid] == ["r0"]
    assert not report.clean
