"""Tests for directive-set combination (A ∧ B and A ∨ B, Section 4.3)."""

import pytest

from repro.core import (
    DirectiveSet,
    PairPruneDirective,
    PriorityDirective,
    PruneDirective,
    ThresholdDirective,
    intersect_directives,
    union_directives,
)
from repro.core.shg import Priority
from repro.resources import whole_program

SYNC = "ExcessiveSyncWaitingTime"


def focus(code):
    return whole_program().with_selection("Code", code)


def prio(code, level):
    return PriorityDirective(SYNC, focus(code), level)


@pytest.fixture
def sets():
    a = DirectiveSet(
        priorities=[
            prio("/Code/x.c", Priority.HIGH),
            prio("/Code/y.c", Priority.HIGH),
            prio("/Code/cold.c", Priority.LOW),
            prio("/Code/dead.c", Priority.LOW),
        ],
        prunes=[PruneDirective("*", "/Machine"), PruneDirective("*", "/Code/t.c")],
        thresholds=[ThresholdDirective(SYNC, 0.10)],
    )
    b = DirectiveSet(
        priorities=[
            prio("/Code/x.c", Priority.HIGH),
            prio("/Code/z.c", Priority.HIGH),
            prio("/Code/cold.c", Priority.LOW),
            prio("/Code/y.c", Priority.LOW),  # disagrees with A
        ],
        prunes=[PruneDirective("*", "/Machine")],
        thresholds=[ThresholdDirective(SYNC, 0.20)],
    )
    return a, b


class TestIntersection:
    def test_high_requires_both(self, sets):
        a, b = sets
        out = intersect_directives(a, b)
        levels = {str(p.focus): p.level for p in out.priorities}
        assert levels[str(focus("/Code/x.c"))] is Priority.HIGH
        assert str(focus("/Code/z.c")) not in levels  # only in B

    def test_low_requires_both(self, sets):
        a, b = sets
        out = intersect_directives(a, b)
        levels = {str(p.focus): p.level for p in out.priorities}
        assert levels[str(focus("/Code/cold.c"))] is Priority.LOW
        assert str(focus("/Code/dead.c")) not in levels

    def test_disagreement_excluded(self, sets):
        a, b = sets
        out = intersect_directives(a, b)
        levels = {str(p.focus): p.level for p in out.priorities}
        # y.c: high in A, low in B -> in neither intersection
        assert str(focus("/Code/y.c")) not in levels

    def test_prunes_intersected(self, sets):
        a, b = sets
        out = intersect_directives(a, b)
        resources = {p.resource for p in out.prunes}
        assert resources == {"/Machine"}

    def test_thresholds_averaged(self, sets):
        a, b = sets
        out = intersect_directives(a, b)
        assert out.threshold_of(SYNC) == pytest.approx(0.15)

    def test_empty_input(self):
        assert intersect_directives().is_empty()


class TestUnion:
    def test_high_in_either(self, sets):
        a, b = sets
        out = union_directives(a, b)
        levels = {str(p.focus): p.level for p in out.priorities}
        assert levels[str(focus("/Code/x.c"))] is Priority.HIGH
        assert levels[str(focus("/Code/z.c"))] is Priority.HIGH

    def test_high_beats_low_on_disagreement(self, sets):
        a, b = sets
        out = union_directives(a, b)
        levels = {str(p.focus): p.level for p in out.priorities}
        # y.c high in A, low in B -> high (paper: "did not test true in A or B"
        # is required for low)
        assert levels[str(focus("/Code/y.c"))] is Priority.HIGH

    def test_low_in_either_if_never_high(self, sets):
        a, b = sets
        out = union_directives(a, b)
        levels = {str(p.focus): p.level for p in out.priorities}
        assert levels[str(focus("/Code/dead.c"))] is Priority.LOW

    def test_prunes_unioned(self, sets):
        a, b = sets
        out = union_directives(a, b)
        resources = {p.resource for p in out.prunes}
        assert resources == {"/Machine", "/Code/t.c"}

    def test_pair_prune_dropped_when_high_elsewhere(self):
        a = DirectiveSet(pair_prunes=[PairPruneDirective(SYNC, focus("/Code/x.c"))])
        b = DirectiveSet(priorities=[prio("/Code/x.c", Priority.HIGH)])
        out = union_directives(a, b)
        assert not out.pair_prunes

    def test_union_bigger_or_equal_than_intersection(self, sets):
        a, b = sets
        u = union_directives(a, b)
        i = intersect_directives(a, b)
        assert len(u.priorities) >= len(i.priorities)
