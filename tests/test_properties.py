"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis import membership_partition, reduction
from repro.core import suggest_threshold
from repro.core.directives import MapDirective, PruneDirective
from repro.core.mapping import ResourceMapper
from repro.resources import (
    Focus,
    ResourceSpace,
    is_prefix,
    join_path,
    split_path,
    whole_program,
)
from repro.simulator import Compute, Engine, Machine, TraceCollector
from repro.simulator.events import EventQueue

# -- strategies -------------------------------------------------------------
component = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="._:-"),
    min_size=1,
    max_size=8,
).filter(lambda s: "/" not in s)

path_parts = st.lists(component, min_size=1, max_size=5)


class TestNameProperties:
    @given(path_parts)
    def test_join_split_roundtrip(self, parts):
        assert split_path(join_path(parts)) == tuple(parts)

    @given(path_parts, st.lists(component, max_size=3))
    def test_prefix_of_extension(self, parts, extra):
        base = join_path(parts)
        longer = join_path(list(parts) + list(extra))
        assert is_prefix(base, longer)

    @given(path_parts)
    def test_prefix_reflexive(self, parts):
        p = join_path(parts)
        assert is_prefix(p, p)


class TestFocusProperties:
    @given(st.lists(component, min_size=1, max_size=3))
    def test_refinement_children_are_descendants(self, labels):
        space = ResourceSpace()
        for i, label in enumerate(labels):
            space.add(f"/Code/{label}{i}")
        wp = whole_program(space)
        for child in wp.children(space):
            assert child.is_descendant_or_equal(wp)
            assert child.depth() == wp.depth() + 1

    @given(path_parts)
    def test_focus_str_parse_roundtrip(self, parts):
        from repro.resources import parse_focus

        sel = join_path(["Code"] + list(parts))
        f = Focus({"Code": sel, "Machine": "/Machine"})
        assert parse_focus(str(f)) == f


class TestMapperProperties:
    @given(path_parts, path_parts)
    def test_identity_map_is_identity(self, a, b):
        path = join_path(["Code"] + list(a))
        mapper = ResourceMapper([MapDirective(path, path)])
        assert mapper.map_path(path) == path

    @given(path_parts)
    def test_unrelated_paths_untouched(self, parts):
        mapper = ResourceMapper([MapDirective("/Machine/n0", "/Machine/n1")])
        path = join_path(["Code"] + list(parts))
        assert mapper.map_path(path) == path


class TestPruneProperties:
    @given(path_parts)
    def test_prune_never_matches_whole_program(self, parts):
        resource = join_path(["Code"] + list(parts))
        prune = PruneDirective("*", resource)
        assert not prune.matches("ExcessiveSyncWaitingTime", whole_program())

    @given(st.lists(component, min_size=1, max_size=3))
    def test_prune_matches_own_subtree(self, parts):
        resource = join_path(["Code"] + list(parts))
        prune = PruneDirective("*", resource)
        f = Focus({"Code": resource})
        assert prune.matches("AnyHyp", f)


class TestThresholdProperties:
    @given(st.lists(st.floats(0.0, 1.0), max_size=30))
    def test_suggest_threshold_in_bounds(self, values):
        t = suggest_threshold(values, noise_floor=0.03, ceiling=0.6, default=0.2)
        assert 0.0 < t <= 0.6 + 1e-9

    @given(st.lists(st.floats(0.31, 0.6), min_size=2, max_size=20))
    def test_threshold_below_solid_cluster(self, values):
        # all observations far above the floor: threshold must not exceed them
        t = suggest_threshold(values, noise_floor=0.03, ceiling=0.6)
        assert t <= max(values)


class TestAnalysisProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["A", "B", "C"]),
            st.sets(st.integers(0, 20)),
            min_size=1,
            max_size=3,
        )
    )
    def test_membership_partition_conserves_elements(self, sets):
        part = membership_partition(sets)
        union = set().union(*sets.values()) if sets else set()
        assert sum(part.values()) == len(union)

    @given(st.floats(1.0, 1e6), st.floats(0.0, 1e6))
    def test_reduction_sign(self, base, directed):
        r = reduction(base, directed)
        if directed < base:
            assert r < 0
        elif directed > base:
            assert r > 0

    @given(st.floats(1.0, 1e6))
    def test_reduction_of_inf_is_nan(self, base):
        assert math.isnan(reduction(base, math.inf))


class TestEventQueueProperties:
    @given(st.lists(st.floats(0.0, 100.0), max_size=40))
    def test_pops_in_time_order(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while (item := q.pop()) is not None:
            popped.append(item[0])
        assert popped == sorted(popped)
        assert len(popped) == len(times)


class TestEngineProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.01, 2.0), min_size=1, max_size=10))
    def test_time_conservation_single_process(self, durations):
        eng = Engine(Machine.named("n", 1))
        tc = TraceCollector()
        eng.add_sink(tc)

        def prog(proc):
            with proc.function("m.c", "f"):
                for d in durations:
                    yield Compute(d)

        eng.add_process("p", "n0", prog)
        finish = eng.run()
        assert finish == sum(durations) or abs(finish - sum(durations)) < 1e-9
        assert abs(tc.total() - sum(durations)) < 1e-9
