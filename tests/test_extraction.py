"""Tests for directive extraction from stored run records."""

import pytest

from repro.apps.synthetic import make_io_app, make_pingpong
from repro.core import (
    SearchConfig,
    extract_directives,
    extract_general_prunes,
    extract_priorities,
    extract_thresholds,
    run_diagnosis,
    suggest_threshold,
)
from repro.core.extraction import extract_historic_prunes, extract_pair_prunes
from repro.core.shg import Priority
from repro.metrics import CostModel
from repro.resources import whole_program

SYNC = "ExcessiveSyncWaitingTime"
CPU = "CPUbound"
IO = "ExcessiveIOBlockingTime"

FAST = SearchConfig(
    min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0,
    noise_band=0.0,
)


@pytest.fixture(scope="module")
def pingpong_record():
    app = make_pingpong(iterations=100, slow=1.0, fast=0.2)
    return run_diagnosis(app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0))


class TestPriorities:
    def test_true_pairs_high(self, pingpong_record):
        prios = extract_priorities([pingpong_record])
        levels = {(p.hypothesis, str(p.focus)): p.level for p in prios}
        assert levels[(SYNC, str(whole_program()))] is Priority.HIGH

    def test_false_pairs_low(self, pingpong_record):
        prios = extract_priorities([pingpong_record])
        levels = {(p.hypothesis, str(p.focus)): p.level for p in prios}
        assert levels[(CPU, str(whole_program()))] is Priority.LOW

    def test_true_in_any_run_wins(self, pingpong_record):
        # same record twice: intersection of true sets is unchanged
        prios1 = extract_priorities([pingpong_record])
        prios2 = extract_priorities([pingpong_record, pingpong_record])
        assert {p.as_line() for p in prios1} == {p.as_line() for p in prios2}


class TestGeneralPrunes:
    def test_syncobject_pruned_from_non_sync(self, pingpong_record):
        prunes = extract_general_prunes(pingpong_record)
        hyps = {p.hypothesis for p in prunes if p.resource == "/SyncObject"}
        assert hyps == {CPU, IO}

    def test_machine_pruned_on_bijection(self, pingpong_record):
        prunes = extract_general_prunes(pingpong_record)
        assert any(p.resource == "/Machine" for p in prunes)

    def test_no_machine_prune_without_record(self):
        prunes = extract_general_prunes(None)
        assert not any(p.resource == "/Machine" for p in prunes)


class TestHistoricPrunes:
    def test_tiny_function_pruned(self, pingpong_record):
        # pp.c has only busy functions; build an app with a dead one
        app = make_io_app(iterations=60, compute=0.5, io=0.5)
        rec = run_diagnosis(app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0))
        # wr.c/main holds ~0 exclusive time in this app
        prunes = extract_historic_prunes([rec], min_exec_fraction=0.005)
        assert any(p.resource == "/Code/wr.c/main" for p in prunes)

    def test_busy_function_kept(self, pingpong_record):
        prunes = extract_historic_prunes([pingpong_record], min_exec_fraction=0.005)
        assert not any("work" in p.resource for p in prunes)

    def test_whole_module_folded(self):
        app = make_io_app(iterations=60, compute=0.5, io=0.5)
        rec = run_diagnosis(app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0))
        # with a huge cutoff every wr.c function is tiny -> module-level prune
        prunes = extract_historic_prunes([rec], min_exec_fraction=2.0)
        assert any(p.resource == "/Code/wr.c" for p in prunes)

    def test_empty_records(self):
        assert extract_historic_prunes([]) == []


class TestPairPrunes:
    def test_false_pairs_become_pair_prunes(self, pingpong_record):
        pair_prunes = extract_pair_prunes([pingpong_record])
        keys = {(p.hypothesis, str(p.focus)) for p in pair_prunes}
        assert (CPU, str(whole_program())) in keys
        # true pairs are never pair-pruned
        assert (SYNC, str(whole_program())) not in keys


class TestSuggestThreshold:
    def test_finds_largest_gap(self):
        values = [0.45, 0.40, 0.38, 0.36, 0.08, 0.06, 0.05]
        t = suggest_threshold(values, noise_floor=0.03)
        assert 0.08 < t < 0.36

    def test_few_values_returns_default(self):
        assert suggest_threshold([0.5], default=0.2) == 0.2
        assert suggest_threshold([], default=0.3) == 0.3

    def test_ceiling_excludes_high_gaps(self):
        # the large gap between 0.25 and 0.9 sits above the ceiling; the
        # suggestion must come from the low gap instead
        values = [0.9, 0.25, 0.22, 0.21, 0.05]
        t = suggest_threshold(values)
        assert t < 0.21

    def test_extract_thresholds_from_record(self, pingpong_record):
        ts = extract_thresholds([pingpong_record])
        hyps = {t.hypothesis for t in ts}
        assert SYNC in hyps
        sync_t = next(t for t in ts if t.hypothesis == SYNC)
        assert 0.0 < sync_t.value < 0.6


class TestExtractDirectives:
    def test_full_extraction_kinds(self, pingpong_record):
        ds = extract_directives(pingpong_record, include_thresholds=True)
        assert ds.priorities and ds.prunes and ds.pair_prunes and ds.thresholds

    def test_flags_disable_kinds(self, pingpong_record):
        ds = extract_directives(
            pingpong_record,
            include_priorities=False,
            include_general_prunes=False,
            include_historic_prunes=False,
            include_pair_prunes=False,
        )
        assert ds.is_empty()

    def test_single_record_accepted(self, pingpong_record):
        ds1 = extract_directives(pingpong_record)
        ds2 = extract_directives([pingpong_record])
        assert ds1.to_text() == ds2.to_text()


class TestSummaryEquivalence:
    """Summary-based extraction must match record-based extraction
    directive-for-directive on real diagnosed runs."""

    @pytest.fixture(scope="class")
    def records(self, pingpong_record):
        io_record = run_diagnosis(
            make_io_app(iterations=100),
            config=FAST,
            cost_model=CostModel(perturb_per_unit=0.0),
        )
        return [pingpong_record, io_record]

    def test_extract_directives_matches(self, records):
        from repro.core.extraction import extract_directives_from_summaries
        from repro.storage.store import summarize_record

        summaries = [summarize_record(r) for r in records]
        from_records = extract_directives(records, include_thresholds=True)
        from_summaries = extract_directives_from_summaries(
            summaries, include_thresholds=True
        )
        assert from_summaries.to_text() == from_records.to_text()

    def test_harvest_store_matches_harvest_records(self, records, tmp_path):
        from repro.facade import harvest
        from repro.storage import ExperimentStore

        store = ExperimentStore(tmp_path / "runs")
        for record in records:
            store.save(record)
        via_store = harvest(store, include_thresholds=True)
        via_records = harvest(records, include_thresholds=True)
        assert via_store.to_text() == via_records.to_text()

    def test_harvest_store_parses_no_records(self, records, tmp_path):
        from repro.facade import harvest
        from repro.storage import ExperimentStore

        root = tmp_path / "runs"
        store = ExperimentStore(root)
        for record in records:
            store.save(record)
        fresh = ExperimentStore(root)
        fresh.load = lambda run_id: pytest.fail(
            f"harvest deserialized record {run_id!r}"
        )
        fresh.load_many = lambda *a, **k: pytest.fail("harvest used load_many")
        assert len(harvest(fresh)) > 0
