"""Tests for the application descriptors and workloads."""

import pytest

from repro.apps import Application, PoissonConfig, VERSIONS, build_poisson, version_maps
from repro.apps.anneal import AnnealConfig, build_anneal
from repro.apps.ocean import OceanConfig, build_ocean
from repro.apps.poisson import machine_maps
from repro.apps.tester import TesterConfig, build_tester
from repro.core.mapping import ResourceMapper
from repro.metrics.profile import ProfileCollector
from repro.simulator import Activity, Compute


SMALL = PoissonConfig(iterations=40)


class TestApplicationDescriptor:
    def test_missing_program_rejected(self):
        with pytest.raises(ValueError):
            Application(
                name="x", version="1", modules={}, tags=(),
                processes=("p",), placement={"p": "n"}, programs={},
            )

    def test_missing_placement_rejected(self):
        def prog(proc):
            yield Compute(1.0)

        with pytest.raises(ValueError):
            Application(
                name="x", version="1", modules={}, tags=(),
                processes=("p",), placement={}, programs={"p": prog},
            )

    def test_space_contains_all_static_resources(self):
        app = build_poisson("C", SMALL)
        space = app.make_space()
        assert "/Code/exchng2.f/exchng2" in space
        assert "/SyncObject/Message/3/-1" in space
        assert "/SyncObject/Barrier" in space
        assert "/Process/Poisson:4" in space
        assert "/Machine/node08" in space

    def test_engine_runs_app(self):
        app = build_poisson("C", SMALL)
        eng = app.make_engine()
        t = eng.run()
        assert t > 0


class TestPoissonVersions:
    def test_version_process_counts(self):
        assert build_poisson("C", SMALL).n_processes == 4
        assert build_poisson("D", SMALL).n_processes == 8

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            build_poisson("E")

    def test_node_blocks_differ(self):
        a = build_poisson("A", SMALL)
        b = build_poisson("B", SMALL)
        assert set(a.node_names).isdisjoint(b.node_names)

    def test_modules_renamed_between_a_and_b(self):
        a = build_poisson("A", SMALL)
        b = build_poisson("B", SMALL)
        assert "oned.f" in a.modules and "onednb.f" in b.modules
        assert "exchng1.f" in a.modules and "nbexchng.f" in b.modules

    def test_c_and_d_share_code(self):
        c = build_poisson("C", SMALL)
        d = build_poisson("D", SMALL)
        assert dict(c.modules) == dict(d.modules)

    def test_deterministic_runs(self):
        def finish(v):
            app = build_poisson(v, SMALL)
            return app.make_engine().run()

        assert finish("C") == finish("C")

    def test_sync_dominated_profile(self):
        app = build_poisson("C", PoissonConfig(iterations=150))
        eng = app.make_engine()
        pc = ProfileCollector()
        eng.add_sink(pc)
        eng.run()
        prof = pc.profile
        total = prof.total_time()
        sync = prof.totals["sync"] / total
        assert sync > 0.4  # paper: "strongly dominated by synchronization"
        # exchng2 carries more wait than main (45% vs 20% in the paper)
        exch = sum(prof.by_code["/Code/exchng2.f/exchng2"].values())
        main = prof.by_code["/Code/twod.f/main"].get("sync", 0.0)
        assert exch > main

    def test_tag_split_shape(self):
        app = build_poisson("C", PoissonConfig(iterations=150))
        eng = app.make_engine()
        pc = ProfileCollector()
        eng.add_sink(pc)
        eng.run()
        tags = pc.profile.by_tag
        t30 = tags["/SyncObject/Message/3/0"]["sync"]
        t31 = tags["/SyncObject/Message/3/1"]["sync"]
        t3m1 = tags["/SyncObject/Message/3/-1"]["sync"]
        # paper: 27% / 19% / 20% -- the shape is 3/0 largest, others close
        assert t30 > t31
        assert t3m1 > t31

    def test_late_processes_wait_more(self):
        app = build_poisson("C", PoissonConfig(iterations=150))
        eng = app.make_engine()
        pc = ProfileCollector()
        eng.add_sink(pc)
        eng.run()
        prof = pc.profile
        w = [prof.sync_fraction_by_process(f"/Process/Poisson:{i}") for i in (1, 2, 3, 4)]
        # paper: processes 3 and 4 dominated by wait (81%/86%), 1-2 lower
        assert min(w[2], w[3]) > max(w[0], w[1])

    def test_nonblocking_version_less_exchange_wait(self):
        def exch_wait(v, module, fn):
            app = build_poisson(v, PoissonConfig(iterations=120))
            eng = app.make_engine()
            pc = ProfileCollector()
            eng.add_sink(pc)
            eng.run()
            prof = pc.profile
            return prof.by_code[f"/Code/{module}/{fn}"].get("sync", 0.0) / prof.total_time()

        a = exch_wait("A", "exchng1.f", "exchng1")
        b = exch_wait("B", "nbexchng.f", "nbexchng1")
        assert b < a  # overlap hides exchange waits


class TestVersionMaps:
    def test_figure3_maps_present(self):
        maps = {(m.old, m.new) for m in version_maps("A", "B")}
        assert ("/Code/oned.f", "/Code/onednb.f") in maps
        assert ("/Code/sweep.f/sweep1d", "/Code/nbsweep.f/nbsweep") in maps
        assert ("/Code/exchng1.f/exchng1", "/Code/nbexchng.f/nbexchng1") in maps

    def test_identity_maps_empty(self):
        assert version_maps("C", "C") == []
        assert version_maps("C", "D") == []

    def test_inverse_direction(self):
        fwd = {(m.old, m.new) for m in version_maps("A", "B")}
        rev = {(m.new, m.old) for m in version_maps("B", "A")}
        assert fwd == rev

    def test_tag_family_mapped_a_to_c(self):
        maps = {(m.old, m.new) for m in version_maps("A", "C")}
        assert ("/SyncObject/Message/1", "/SyncObject/Message/3") in maps

    def test_mapped_resources_exist_in_target(self):
        src = build_poisson("A", SMALL)
        dst = build_poisson("B", SMALL)
        maps = version_maps("A", "B", src, dst)
        mapper = ResourceMapper(maps)
        dst_space = dst.make_space()
        for name in src.make_space().names():
            mapped = mapper.map_path(name)
            # everything mapped from A must resolve to a B resource
            assert mapped in dst_space, f"{name} -> {mapped} missing in B"

    def test_machine_maps_positional(self):
        a = build_poisson("A", SMALL)
        b = build_poisson("B", SMALL)
        maps = machine_maps(a, b)
        assert len(maps) == 4
        assert maps[0].old == "/Machine/node00" and maps[0].new == "/Machine/node04"

    def test_machine_maps_partial_for_more_nodes(self):
        c = build_poisson("C", SMALL)
        d = build_poisson("D", SMALL)
        maps = machine_maps(c, d)
        assert len(maps) == 4  # only the first 4 of D's 8 nodes pair up


class TestOtherApps:
    def test_ocean_structure(self):
        app = build_ocean(OceanConfig(iterations=30))
        space = app.make_space()
        assert "/Code/halo.f/haloswap" in space
        assert "/SyncObject/Message/5/-1" in space
        assert app.make_engine().run() > 0

    def test_tester_matches_figure1(self):
        app = build_tester(TesterConfig(iterations=20))
        assert set(app.modules) == {"main.c", "testutil.C", "vect.c"}
        assert app.node_names == ["CPU_1", "CPU_2", "CPU_3", "CPU_4"]
        assert app.processes[1] == "Tester:2"
        assert "verifya" in app.modules["testutil.C"]

    def test_anneal_hot_modules(self):
        app = build_anneal(AnnealConfig(iterations=60))
        eng = app.make_engine()
        pc = ProfileCollector()
        eng.add_sink(pc)
        eng.run()
        prof = pc.profile
        total = prof.total_time()
        hot = prof.by_code["/Code/goat/evalmove"].get("compute", 0.0)
        hot += prof.by_code["/Code/partition.c/cutcost"].get("compute", 0.0)
        assert hot / total > 0.7  # figure 2: goat and partition.c true
