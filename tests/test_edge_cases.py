"""Edge-case tests across modules: the awkward inputs and corners."""

import json

import pytest

from repro.apps.synthetic import make_compute_app, make_pingpong
from repro.core import (
    DirectiveSet,
    PruneDirective,
    SearchConfig,
    run_diagnosis,
)
from repro.metrics import CostModel
from repro.resources import whole_program
from repro.simulator import (
    ANY_SOURCE,
    Activity,
    Compute,
    Engine,
    LatencyModel,
    Machine,
    Mailbox,
    Message,
    Recv,
    Send,
)
from repro.storage import ExperimentStore, RunRecord

LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)
FAST = SearchConfig(min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0)


class TestMailboxCorners:
    def msg(self, src="a", tag="t/0", arrival=1.0):
        return Message(src=src, dest="b", tag=tag, size=0, send_time=0.0,
                       arrival_time=arrival)

    def test_wildcard_prefers_earliest_arrival(self):
        box = Mailbox()
        box.deliver(self.msg(src="x", arrival=5.0))
        box.deliver(self.msg(src="y", arrival=2.0))
        first = box.match(ANY_SOURCE, "t/0")
        assert first.src == "y"

    def test_specific_source_skips_others(self):
        box = Mailbox()
        box.deliver(self.msg(src="x"))
        assert box.match("y", "t/0") is None
        assert box.match("x", "t/0") is not None

    def test_peek_does_not_consume(self):
        box = Mailbox()
        box.deliver(self.msg())
        assert box.peek("a", "t/0")
        assert len(box) == 1

    def test_pending_snapshot(self):
        box = Mailbox()
        box.deliver(self.msg())
        snap = box.pending()
        box.match("a", "t/0")
        assert len(snap) == 1 and len(box.pending()) == 0


class TestEngineCorners:
    def test_zero_compute_allowed(self):
        eng = Engine(Machine.named("n", 1), latency=LAT)

        def prog(proc):
            with proc.function("m", "f"):
                yield Compute(0.0)
                yield Compute(1.0)

        eng.add_process("p", "n0", prog)
        assert eng.run() == pytest.approx(1.0)

    def test_empty_program(self):
        eng = Engine(Machine.named("n", 1), latency=LAT)

        def prog(proc):
            return
            yield  # pragma: no cover

        eng.add_process("p", "n0", prog)
        assert eng.run() == pytest.approx(0.0)

    def test_no_function_frame_attribution(self):
        from repro.simulator import TraceCollector

        eng = Engine(Machine.named("n", 1), latency=LAT)
        tc = TraceCollector()
        eng.add_sink(tc)

        def prog(proc):
            yield Compute(1.0)  # outside any function frame

        eng.add_process("p", "n0", prog)
        eng.run()
        assert tc.segments[0].function == "<toplevel>"

    def test_self_send_receive(self):
        eng = Engine(Machine.named("n", 1), latency=LAT)

        def prog(proc):
            with proc.function("m", "f"):
                yield Send("p", "t/0", 0)
                yield Recv("p", "t/0")

        eng.add_process("p", "n0", prog)
        assert eng.run() >= 0.0

    def test_placement_unknown_node(self):
        eng = Engine(Machine.named("n", 1), latency=LAT)

        def prog(proc):
            yield Compute(1.0)

        with pytest.raises(ValueError):
            eng.add_process("p", "ghost-node", prog)


class TestSearchCorners:
    def test_single_process_single_function_app(self):
        app = make_compute_app({("only.c", "work"): 1.0}, iterations=30)
        rec = run_diagnosis(app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0))
        assert rec.bottleneck_count() > 0

    def test_everything_pruned_still_terminates(self):
        app = make_pingpong(iterations=40)
        ds = DirectiveSet(prunes=[
            PruneDirective("*", "/Code"),
            PruneDirective("*", "/Machine"),
            PruneDirective("*", "/Process"),
            PruneDirective("*", "/SyncObject"),
        ])
        rec = run_diagnosis(app, directives=ds, config=FAST,
                            cost_model=CostModel(perturb_per_unit=0.0))
        # only the whole-program tests could run
        assert rec.pairs_tested <= 3
        assert rec.search_done_time is not None

    def test_zero_iteration_app(self):
        app = make_compute_app({("m.c", "f"): 0.5}, iterations=0)
        rec = run_diagnosis(app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0))
        # instantly-finished program: nothing concluded, nothing crashes
        assert rec.bottleneck_count() == 0
        assert rec.finish_time == pytest.approx(0.0)

    def test_duplicate_directives_harmless(self):
        app = make_pingpong(iterations=40)
        prune = PruneDirective("*", "/Machine")
        ds = DirectiveSet(prunes=[prune, prune, prune])
        rec = run_diagnosis(app, directives=ds, config=FAST,
                            cost_model=CostModel(perturb_per_unit=0.0))
        assert rec.pairs_tested > 0


class TestStorageCorners:
    def test_unicode_run_id(self, tmp_path):
        app = make_pingpong(iterations=20)
        rec = run_diagnosis(app, config=FAST, run_id="run-ü-1",
                            cost_model=CostModel(perturb_per_unit=0.0))
        store = ExperimentStore(tmp_path)
        store.save(rec)
        assert store.load("run-ü-1").run_id == "run-ü-1"

    def test_index_survives_manual_record_deletion(self, tmp_path):
        app = make_pingpong(iterations=20)
        rec = run_diagnosis(app, config=FAST, run_id="r1",
                            cost_model=CostModel(perturb_per_unit=0.0))
        store = ExperimentStore(tmp_path)
        store.save(rec)
        (tmp_path / "r1.json").unlink()  # file gone, index stale
        assert "r1" not in store  # contains checks the file
        from repro.storage import StoreError

        with pytest.raises(StoreError):
            store.load("r1")

    def test_record_json_is_plain(self, tmp_path):
        app = make_pingpong(iterations=20)
        rec = run_diagnosis(app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0))
        # every value in the record dict must be JSON-serialisable
        text = json.dumps(rec.to_dict())
        assert RunRecord.from_dict(json.loads(text)).pairs_tested == rec.pairs_tested


class TestFocusCornerCases:
    def test_matches_parts_empty_segment(self):
        wp = whole_program()
        assert wp.matches_parts({})

    def test_deep_focus_against_shallow_segment(self):
        f = whole_program().with_selection("Code", "/Code/a.c/f")
        assert not f.matches_parts({"Code": ("Code", "a.c")})
