"""Tests for the flat postmortem profiler and ground-truth focus values."""

import pytest

from repro.metrics import FlatProfile
from repro.metrics.profile import ProfileCollector
from repro.resources import ResourceSpace, whole_program
from repro.simulator import Activity, TimeSegment


def seg(start, dur, activity, proc="p:1", node="n0", module="m.c", fn="f", tag=None):
    return TimeSegment.make(
        start=start, duration=dur, activity=activity,
        process=proc, node=node, module=module, function=fn, tag=tag,
    )


@pytest.fixture
def profile():
    p = FlatProfile()
    p.add(seg(0, 4.0, Activity.COMPUTE, fn="f"))
    p.add(seg(4, 2.0, Activity.SYNC, fn="g", tag="3/0"))
    p.add(seg(0, 3.0, Activity.COMPUTE, proc="p:2", node="n1", fn="f"))
    p.add(seg(3, 3.0, Activity.SYNC, proc="p:2", node="n1", fn="g", tag="3/1"))
    p.add(seg(6, 1.0, Activity.IO, proc="p:2", node="n1", fn="h"))
    return p


@pytest.fixture
def space():
    s = ResourceSpace()
    for name in (
        "/Code/m.c/f", "/Code/m.c/g", "/Code/m.c/h",
        "/Machine/n0", "/Machine/n1",
        "/Process/p:1", "/Process/p:2",
        "/SyncObject/Message/3/0", "/SyncObject/Message/3/1",
    ):
        s.add(name)
    return s


PLACEMENT = {"p:1": "n0", "p:2": "n1"}


class TestAccumulation:
    def test_totals(self, profile):
        assert profile.totals["compute"] == pytest.approx(7.0)
        assert profile.totals["sync"] == pytest.approx(5.0)
        assert profile.totals["io"] == pytest.approx(1.0)
        assert profile.total_time() == pytest.approx(13.0)

    def test_by_code(self, profile):
        assert profile.by_code["/Code/m.c/f"]["compute"] == pytest.approx(7.0)
        assert profile.by_code["/Code/m.c/g"]["sync"] == pytest.approx(5.0)

    def test_by_tag(self, profile):
        assert profile.by_tag["/SyncObject/Message/3/0"]["sync"] == pytest.approx(2.0)
        assert profile.by_tag["/SyncObject/Message/3/1"]["sync"] == pytest.approx(3.0)

    def test_elapsed_max_end(self, profile):
        assert profile.elapsed == pytest.approx(7.0)

    def test_code_exec_fraction(self, profile):
        assert profile.code_exec_fraction("/Code/m.c/h") == pytest.approx(1.0 / 13.0)
        assert profile.code_exec_fraction("/Code/none") == 0.0

    def test_sync_fraction_by_process(self, profile):
        assert profile.sync_fraction_by_process("/Process/p:1") == pytest.approx(2.0 / 6.0)
        assert profile.sync_fraction_by_process("/Process/none") == 0.0


class TestFocusTruth:
    def test_whole_program_sync_fraction(self, profile, space):
        wp = whole_program(space)
        # 5s sync / (7s elapsed x 2 procs)
        assert profile.focus_fraction(wp, ("sync",), PLACEMENT) == pytest.approx(5.0 / 14.0)

    def test_process_constrained(self, profile, space):
        f = whole_program(space).with_selection("Process", "/Process/p:2")
        assert profile.focus_fraction(f, ("sync",), PLACEMENT) == pytest.approx(3.0 / 7.0)

    def test_tag_constrained(self, profile, space):
        f = whole_program(space).with_selection("SyncObject", "/SyncObject/Message/3/0")
        assert profile.focus_value(f, ("sync",)) == pytest.approx(2.0)

    def test_tag_family(self, profile, space):
        f = whole_program(space).with_selection("SyncObject", "/SyncObject/Message/3")
        assert profile.focus_value(f, ("sync",)) == pytest.approx(5.0)

    def test_conjunction(self, profile, space):
        f = (
            whole_program(space)
            .with_selection("Code", "/Code/m.c/g")
            .with_selection("Process", "/Process/p:1")
        )
        assert profile.focus_value(f, ("sync",)) == pytest.approx(2.0)

    def test_conflicting_focus_zero(self, profile, space):
        f = (
            whole_program(space)
            .with_selection("Machine", "/Machine/n0")
            .with_selection("Process", "/Process/p:2")
        )
        assert profile.focus_fraction(f, ("sync",), PLACEMENT) == 0.0


class TestSerialization:
    def test_roundtrip(self, profile, space):
        clone = FlatProfile.from_dict(profile.to_dict())
        assert clone.totals == profile.totals
        assert clone.elapsed == profile.elapsed
        wp = whole_program(space)
        assert clone.focus_fraction(wp, ("sync",), PLACEMENT) == pytest.approx(
            profile.focus_fraction(wp, ("sync",), PLACEMENT)
        )

    def test_collector_wraps_profile(self):
        pc = ProfileCollector()
        pc.record(seg(0, 1.0, Activity.COMPUTE))
        assert pc.profile.totals["compute"] == pytest.approx(1.0)
