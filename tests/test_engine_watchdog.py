"""Watchdog regression tests (ISSUE 8 satellites 1–2).

Budgets must be non-destructive: the event that would exceed
``max_time``/``max_events`` stays queued, so catching the timeout and
resuming with a larger budget replays *exactly* the unbudgeted run.  And
``events_processed`` counts only dispatched events — the budget-tripping
event is neither counted nor lost.
"""

import pytest

from repro.simulator import (
    Barrier,
    Compute,
    Engine,
    LatencyModel,
    Machine,
    Recv,
    Send,
    SimTimeout,
    TraceCollector,
)


def make_engine(n=3, iters=10):
    eng = Engine(Machine.named("node", n), LatencyModel())

    def prog(rank):
        def p(proc):
            up, down = f"p{(rank + 1) % n}", f"p{(rank - 1) % n}"
            with proc.function("oned.f", "main"):
                for _ in range(iters):
                    with proc.function("sweep.f", "sweep"):
                        yield Compute(0.5 + 0.1 * rank)
                    with proc.function("exchng.f", "exchng"):
                        yield Send(up, "1/0", 128)
                        yield Recv(down, "1/0")
                yield Barrier()
        return p

    for i in range(n):
        eng.add_process(f"p{i}", f"node{i}", prog(i))
    return eng


def seg_key(s):
    return (s.start, s.duration, s.activity, s.process, s.module, s.function,
            s.tag, s.stack)


def reference_run(loop):
    eng = make_engine()
    col = TraceCollector()
    eng.add_sink(col)
    eng.run(loop=loop)
    return eng, col


class TestMaxTimeResume:
    @pytest.mark.parametrize("loop", ["legacy", "fast"])
    def test_resume_after_timeout_matches_unbudgeted(self, loop):
        ref_eng, ref_col = reference_run(loop)
        eng = make_engine()
        col = TraceCollector()
        eng.add_sink(col)
        budget = ref_eng.finished_at / 4
        timeouts = 0
        while True:
            try:
                eng.run(max_time=budget, loop=loop)
                break
            except SimTimeout as exc:
                assert exc.budget == {"max_time": budget}
                timeouts += 1
                budget *= 2
        assert timeouts >= 1  # the budget actually fired at least once
        assert eng.finished_at == ref_eng.finished_at
        # the over-budget event was not lost: the resumed trace and the
        # event count replay the unbudgeted run exactly
        assert eng.events_processed == ref_eng.events_processed
        assert [seg_key(s) for s in col.segments] == [seg_key(s) for s in ref_col.segments]

    @pytest.mark.parametrize("loop", ["legacy", "fast"])
    def test_timeout_preserves_queue(self, loop):
        eng = make_engine()
        with pytest.raises(SimTimeout):
            eng.run(max_time=1.0, loop=loop)
        before = len(eng.queue)
        assert before > 0  # the tripping event is still queued
        with pytest.raises(SimTimeout):
            eng.run(max_time=1.0, loop=loop)
        assert len(eng.queue) == before  # a re-raise consumes nothing

    @pytest.mark.parametrize("loop", ["legacy", "fast"])
    def test_resume_with_already_exceeded_clock(self, loop):
        """Resuming with a budget below the current clock still raises
        without dispatching or dropping anything."""
        eng = make_engine()
        with pytest.raises(SimTimeout):
            eng.run(max_time=2.0, loop=loop)
        events = eng.events_processed
        queued = len(eng.queue)
        with pytest.raises(SimTimeout):
            eng.run(max_time=1.0, loop=loop)  # below eng.now by now
        assert eng.events_processed == events
        assert len(eng.queue) == queued


class TestMaxEventsOffByOne:
    @pytest.mark.parametrize("loop", ["legacy", "fast"])
    def test_counts_only_dispatched_events(self, loop):
        eng = make_engine()
        with pytest.raises(SimTimeout) as info:
            eng.run(max_events=20, loop=loop)
        assert info.value.budget == {"max_events": 20}
        # exactly the budget was dispatched; the 21st event is neither
        # counted (the old off-by-one) nor popped
        assert eng.events_processed == 20

    @pytest.mark.parametrize("loop", ["legacy", "fast"])
    def test_budget_is_per_call_and_resumable(self, loop):
        ref_eng, ref_col = reference_run(loop)
        eng = make_engine()
        col = TraceCollector()
        eng.add_sink(col)
        calls = 0
        while True:
            try:
                eng.run(max_events=25, loop=loop)
                break
            except SimTimeout:
                calls += 1
        assert calls == ref_eng.events_processed // 25
        assert eng.events_processed == ref_eng.events_processed
        assert eng.finished_at == ref_eng.finished_at
        assert [seg_key(s) for s in col.segments] == [seg_key(s) for s in ref_col.segments]

    @pytest.mark.parametrize("loop", ["legacy", "fast"])
    def test_zero_budget_dispatches_nothing(self, loop):
        eng = make_engine()
        with pytest.raises(SimTimeout):
            eng.run(max_events=0, loop=loop)
        assert eng.events_processed == 0

    def test_cross_loop_resume_counts_match(self):
        ref_eng, _ = reference_run("legacy")
        eng = make_engine()
        loop = "fast"
        while True:
            try:
                eng.run(max_events=30, loop=loop)
                break
            except SimTimeout:
                loop = "legacy" if loop == "fast" else "fast"
        assert eng.events_processed == ref_eng.events_processed
        assert eng.finished_at == ref_eng.finished_at
