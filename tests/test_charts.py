"""Tests for the tiny terminal charts."""

import pytest

from repro.visualize import bar_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_flat(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_monotone_rises(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 3

    def test_explicit_bounds(self):
        # with a wide explicit range the values sit low
        line = sparkline([1.0, 2.0], lo=0.0, hi=100.0)
        assert set(line) == {"▁"}

    def test_values_clamped(self):
        line = sparkline([-5.0, 50.0], lo=0.0, hi=10.0)
        assert line[0] == "▁" and line[1] == "█"


class TestBarChart:
    def test_empty(self):
        assert bar_chart([]) == ""

    def test_proportional_bars(self):
        out = bar_chart([("a", 1.0), ("b", 0.5)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        out = bar_chart([("short", 1.0), ("muchlonger", 1.0)], width=4)
        lines = out.splitlines()
        assert lines[0].index("#") == lines[1].index("#")

    def test_zero_peak(self):
        out = bar_chart([("a", 0.0)], width=10)
        assert "#" not in out

    def test_custom_format(self):
        out = bar_chart([("a", 0.123456)], fmt="{:.1f}")
        assert out.endswith("0.1")
