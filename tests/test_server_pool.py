"""Tests for the StorePool: hot handles, harvest caching, eviction."""

import pytest

from repro import diagnose, harvest
from repro.apps.synthetic import make_pingpong
from repro.facade import default_pool
from repro.server import StorePool
from repro.storage import ExperimentStore

FAST = dict(min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0)


def _seed(path, run_id="seed-0001"):
    return diagnose(make_pingpong(iterations=40), store=path,
                    run_id=run_id, pool=None, **FAST)


class TestStorePool:
    def test_same_path_reuses_store(self, tmp_path):
        _seed(tmp_path / "runs")
        pool = StorePool()
        a = pool.get(tmp_path / "runs")
        b = pool.get(str(tmp_path / "runs"))
        assert a is b
        assert pool.stats()["store_hits"] == 1
        assert pool.stats()["store_misses"] == 1

    def test_passthrough_store_not_owned(self, tmp_path):
        _seed(tmp_path / "runs")
        store = ExperimentStore(tmp_path / "runs")
        pool = StorePool()
        assert pool.get(store) is store
        pool.close()
        # Pass-through stores stay usable after the pool closes.
        assert store.list()

    def test_eviction_closes_lru(self, tmp_path):
        pool = StorePool(max_stores=2)
        stores = []
        for i in range(3):
            _seed(tmp_path / f"runs{i}")
            stores.append(pool.get(tmp_path / f"runs{i}"))
        assert len(pool) == 2
        assert pool.stats()["store_evictions"] == 1
        # The evicted (oldest) store re-opens as a fresh instance.
        again = pool.get(tmp_path / "runs0")
        assert again is not stores[0]

    def test_harvest_cached_until_write(self, tmp_path):
        _seed(tmp_path / "runs")
        pool = StorePool()
        first = pool.harvest(tmp_path / "runs")
        second = pool.harvest(tmp_path / "runs")
        assert second is first
        assert pool.stats()["harvest_hits"] == 1
        # Any write changes the index state token and invalidates.
        _seed(tmp_path / "runs", run_id="seed-0002")
        third = pool.harvest(tmp_path / "runs")
        assert third is not first
        assert pool.stats()["harvest_misses"] == 2

    def test_harvest_matches_facade(self, tmp_path):
        _seed(tmp_path / "runs")
        pool = StorePool()
        pooled = pool.harvest(tmp_path / "runs", include_thresholds=True)
        cold = harvest(tmp_path / "runs", include_thresholds=True, pool=None)
        assert pooled.to_text() == cold.to_text()

    def test_harvest_key_includes_options_and_app(self, tmp_path):
        _seed(tmp_path / "runs")
        pool = StorePool()
        base = pool.harvest(tmp_path / "runs")
        with_thresholds = pool.harvest(tmp_path / "runs", include_thresholds=True)
        other_app = pool.harvest(tmp_path / "runs", app="nosuch")
        assert with_thresholds is not base
        # Different app filter → different cache entry (here: only the
        # history-independent general prunes survive).
        assert other_app is not base
        assert len(other_app) < len(base)

    def test_closed_pool_rejects(self, tmp_path):
        pool = StorePool()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.get(tmp_path / "runs")

    def test_context_manager(self, tmp_path):
        _seed(tmp_path / "runs")
        with StorePool() as pool:
            assert pool.get(tmp_path / "runs").list()


class TestFacadePoolRouting:
    def test_default_pool_reuses_handles(self, tmp_path):
        _seed(tmp_path / "runs")
        pool = default_pool()
        before = pool.stats()
        harvest(tmp_path / "runs")
        harvest(tmp_path / "runs")
        after = pool.stats()
        assert after["harvest_hits"] >= before["harvest_hits"] + 1

    def test_explicit_pool(self, tmp_path):
        _seed(tmp_path / "runs")
        pool = StorePool()
        app = make_pingpong(iterations=40)
        harvest(tmp_path / "runs", app=app, pool=pool)
        record = diagnose(app,
                          history=tmp_path / "runs",
                          store=tmp_path / "runs", run_id="directed",
                          pool=pool, **FAST)
        stats = pool.stats()
        assert stats["harvest_hits"] >= 1       # diagnose reused the harvest
        assert stats["store_hits"] >= 1         # and the open store
        assert record.run_id == "directed"
        pool.close()

    def test_pool_none_preserves_cold_path(self, tmp_path):
        _seed(tmp_path / "runs")
        pool = default_pool()
        before = pool.stats()
        warm = harvest(tmp_path / "runs")
        cold = harvest(tmp_path / "runs", pool=None)
        assert cold.to_text() == warm.to_text()
        # The opt-out call never touched the shared pool.
        assert default_pool().stats()["store_misses"] == \
            max(before["store_misses"], default_pool().stats()["store_misses"])

    def test_diagnose_pool_produces_identical_record(self, tmp_path):
        _seed(tmp_path / "runs")
        from repro.obs import deterministic_metrics

        pooled = diagnose(make_pingpong(iterations=40),
                          history=tmp_path / "runs", run_id="x", **FAST)
        cold = diagnose(make_pingpong(iterations=40),
                        history=tmp_path / "runs", run_id="x",
                        pool=None, **FAST)
        a, b = pooled.to_dict(), cold.to_dict()
        a["metrics"] = deterministic_metrics(a["metrics"])
        b["metrics"] = deterministic_metrics(b["metrics"])
        assert a == b
