"""Tests for the collective-operation generator fragments."""

import pytest

from repro.simulator import (
    Activity,
    Compute,
    Engine,
    LatencyModel,
    Machine,
    TraceCollector,
)
from repro.simulator.collectives import (
    allreduce,
    alltoall,
    bcast,
    gather,
    reduce,
    scatter,
)

LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)


def run_collective(n, body, computes=None):
    """Run n processes; each computes then runs the collective body."""
    eng = Engine(Machine.named("n", n), latency=LAT)
    tc = TraceCollector()
    eng.add_sink(tc)
    procs = [f"p:{i}" for i in range(n)]

    def make(rank):
        def program(proc):
            with proc.function("m.c", "f"):
                if computes:
                    yield Compute(computes[rank])
                yield from body(proc, rank, procs)

        return program

    for i, name in enumerate(procs):
        eng.add_process(name, f"n{i}", make(i))
    t = eng.run()
    return eng, tc, t


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
@pytest.mark.parametrize("algorithm", ["tree", "linear"])
class TestBcast:
    def test_completes_any_size(self, n, algorithm):
        _, _, t = run_collective(
            n, lambda p, r, procs: bcast(p, r, procs, algorithm=algorithm)
        )
        assert t >= 0.0

    def test_late_root_blocks_everyone(self, n, algorithm):
        if n == 1:
            pytest.skip("single process has no waits")
        computes = [5.0] + [0.0] * (n - 1)
        _, tc, t = run_collective(
            n,
            lambda p, r, procs: bcast(p, r, procs, algorithm=algorithm),
            computes=computes,
        )
        # everyone but the root waits for the root's compute
        assert tc.total(Activity.SYNC) == pytest.approx(5.0 * (n - 1), rel=1e-6)


class TestBcastRoots:
    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_non_zero_root(self, root):
        n = 4
        computes = [0.0] * n
        computes[root] = 3.0
        _, tc, _ = run_collective(
            n,
            lambda p, r, procs: bcast(p, r, procs, root=root),
            computes=computes,
        )
        assert tc.total(Activity.SYNC) == pytest.approx(9.0, rel=1e-6)

    def test_bad_root(self):
        with pytest.raises(ValueError):
            run_collective(2, lambda p, r, procs: bcast(p, r, procs, root=9))


class TestGatherScatterReduce:
    def test_gather_root_waits_for_slowest(self):
        computes = [0.0, 4.0, 1.0, 2.0]
        _, tc, t = run_collective(
            4, lambda p, r, procs: gather(p, r, procs, root=0), computes=computes
        )
        assert t == pytest.approx(4.0)
        # only the root waits
        waits = [s for s in tc.segments if s.activity is Activity.SYNC]
        assert all(s.process == "p:0" for s in waits)

    def test_scatter_non_roots_wait(self):
        computes = [3.0, 0.0, 0.0, 0.0]
        _, tc, t = run_collective(
            4, lambda p, r, procs: scatter(p, r, procs, root=0), computes=computes
        )
        assert tc.total(Activity.SYNC) == pytest.approx(9.0)

    def test_reduce_is_gather_shaped(self):
        computes = [0.0, 2.0]
        _, tc, t = run_collective(
            2, lambda p, r, procs: reduce(p, r, procs, root=0), computes=computes
        )
        assert t == pytest.approx(2.0)


class TestAllreduceAlltoall:
    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_allreduce_synchronises(self, n):
        computes = [float(i) for i in range(n)]
        _, tc, t = run_collective(
            n, lambda p, r, procs: allreduce(p, r, procs), computes=computes
        )
        # nobody can leave before the slowest has contributed
        assert t == pytest.approx(max(computes))

    def test_alltoall_completes(self):
        _, _, t = run_collective(5, lambda p, r, procs: alltoall(p, r, procs))
        assert t >= 0.0

    def test_alltoall_waits_for_slowest(self):
        computes = [0.0, 0.0, 6.0]
        _, tc, t = run_collective(
            3, lambda p, r, procs: alltoall(p, r, procs), computes=computes
        )
        assert t == pytest.approx(6.0)

    def test_collective_waits_attributed_to_tag(self):
        computes = [4.0, 0.0]
        _, tc, _ = run_collective(
            2, lambda p, r, procs: bcast(p, r, procs, tag="9/9"), computes=computes
        )
        waits = [s for s in tc.segments if s.activity is Activity.SYNC]
        assert waits and all(s.tag == "9/9" for s in waits)
        assert waits[0].parts["SyncObject"] == ("SyncObject", "Message", "9", "9")
