"""Failure-injection tests: crashing programs under diagnosis."""

import pytest

from repro.simulator import (
    Activity,
    Compute,
    Engine,
    LatencyModel,
    Machine,
    ProcState,
    Recv,
    Send,
    SimDeadlock,
    SimulationError,
    TraceCollector,
)

LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)


def crashing_prog(proc):
    with proc.function("m.c", "f"):
        yield Compute(2.0)
        raise RuntimeError("simulated segfault")


def healthy_prog(proc):
    with proc.function("m.c", "g"):
        yield Compute(5.0)


class TestCrashPolicies:
    def test_default_raises(self):
        eng = Engine(Machine.named("n", 1), latency=LAT)
        eng.add_process("p", "n0", crashing_prog)
        with pytest.raises(RuntimeError, match="simulated segfault"):
            eng.run()

    def test_record_policy_continues(self):
        eng = Engine(Machine.named("n", 2), latency=LAT, crash_policy="record")
        eng.add_process("p", "n0", crashing_prog)
        eng.add_process("q", "n1", healthy_prog)
        t = eng.run()
        assert t == pytest.approx(5.0)
        assert eng.procs["p"].state is ProcState.CRASHED
        assert isinstance(eng.procs["p"].crash, RuntimeError)
        assert eng.procs["q"].state is ProcState.DONE

    def test_crashed_process_time_preserved(self):
        eng = Engine(Machine.named("n", 1), latency=LAT, crash_policy="record")
        tc = TraceCollector()
        eng.add_sink(tc)
        eng.add_process("p", "n0", crashing_prog)
        eng.run()
        assert tc.total(Activity.COMPUTE) == pytest.approx(2.0)
        assert eng.procs["p"].finish_time == pytest.approx(2.0)

    def test_peer_waiting_on_crashed_process_is_diagnosed(self):
        def waiter(proc):
            with proc.function("m.c", "w"):
                yield Recv("p", "t/0")

        eng = Engine(Machine.named("n", 2), latency=LAT, crash_policy="record")
        eng.add_process("p", "n0", crashing_prog)
        eng.add_process("q", "n1", waiter)
        with pytest.raises(SimDeadlock, match="crashed processes: \\['p'\\]"):
            eng.run()

    def test_crash_excluded_from_barrier_count(self):
        from repro.simulator import Barrier

        def barrier_prog(proc):
            with proc.function("m.c", "b"):
                yield Compute(1.0)
                yield Barrier()

        eng = Engine(Machine.named("n", 2), latency=LAT, crash_policy="record")
        eng.add_process("p", "n0", crashing_prog)  # crashes at t=2
        eng.add_process("q", "n1", barrier_prog)   # reaches barrier at t=1
        # q's barrier completes once p crashes (live count drops to 1)
        t = eng.run()
        assert eng.procs["q"].state is ProcState.DONE

    def test_invalid_policy_rejected(self):
        with pytest.raises(SimulationError):
            Engine(Machine.named("n", 1), crash_policy="explode")

    def test_program_errors_still_raise_under_record(self):
        def bad(proc):
            yield "not a syscall"

        eng = Engine(Machine.named("n", 1), latency=LAT, crash_policy="record")
        eng.add_process("p", "n0", bad)
        with pytest.raises(Exception):
            eng.run()


class TestDiagnosisOfCrashedRun:
    def test_search_finalizes_on_partial_run(self):
        """A diagnosis of a run whose processes die early still concludes
        from the data gathered before the crash."""
        from repro.core import PerformanceConsultantSearch, SearchConfig
        from repro.metrics import CostModel, InstrumentationManager
        from repro.metrics.profile import ProfileCollector
        from repro.resources import ResourceSpace

        def worker(proc):
            with proc.function("m.c", "hot"):
                for _ in range(30):
                    yield Compute(1.0)
                raise RuntimeError("died late")

        eng = Engine(Machine.named("n", 1), latency=LAT, crash_policy="record")
        space = ResourceSpace()
        space.add("/Code/m.c/hot")
        space.add("/Process/w")
        space.add("/Machine/n0")
        eng.add_process("w", "n0", worker)
        instr = InstrumentationManager(
            eng, space, cost_model=CostModel(perturb_per_unit=0.0),
            cost_limit=50.0, insertion_latency=0.2,
        )
        search = PerformanceConsultantSearch(
            eng, instr, space,
            config=SearchConfig(min_interval=5.0, check_period=0.5,
                                insertion_latency=0.2, cost_limit=50.0),
        )
        search.start()
        eng.run()
        trues = search.true_pairs()
        assert any(h == "CPUbound" for h, _ in trues)
        # the crash still triggered final_pass: nothing left dangling active
        from repro.core.shg import NodeState
        assert not search.shg.by_state(NodeState.ACTIVE)
