"""Tests for execution comparison and cross-run queries."""

import pytest

from repro.analysis import (
    bottleneck_diff,
    comparison_report,
    performance_diff,
    structural_diff,
)
from repro.apps.poisson import PoissonConfig, build_poisson, version_maps
from repro.core import ResourceMapper, SearchConfig, run_diagnosis
from repro.storage import (
    ExperimentStore,
    best_run,
    bottleneck_persistence,
    resource_history,
    select,
)

SC = SearchConfig(min_interval=15.0, check_period=1.0, insertion_latency=1.0, cost_limit=8.0)
CFG = PoissonConfig(iterations=150)


@pytest.fixture(scope="module")
def runs():
    a = run_diagnosis(build_poisson("A", CFG), config=SC, run_id="cmp-A")
    b = run_diagnosis(build_poisson("B", CFG), config=SC, run_id="cmp-B")
    c = run_diagnosis(build_poisson("C", CFG), config=SC, run_id="cmp-C")
    return a, b, c


@pytest.fixture(scope="module")
def store(runs, tmp_path_factory):
    store = ExperimentStore(tmp_path_factory.mktemp("cmpstore"))
    for rec in runs:
        store.save(rec)
    return store


class TestStructuralDiff:
    def test_renamed_modules_detected(self, runs):
        a, b, _ = runs
        diff = structural_diff(a, b)
        assert "/Code/oned.f" in diff.only_old["Code"]
        assert "/Code/onednb.f" in diff.only_new["Code"]
        assert "/Code/diff.f" in diff.common["Code"]
        assert not diff.is_identical

    def test_mapping_closes_the_gap(self, runs):
        a, b, _ = runs
        mapper = ResourceMapper(version_maps("A", "B",
                                             build_poisson("A", CFG),
                                             build_poisson("B", CFG)))
        diff = structural_diff(a, b, mapper=mapper)
        # after mapping, the code hierarchies coincide
        assert not diff.only_old["Code"]
        assert not diff.only_new["Code"]

    def test_identical_run_is_identical(self, runs):
        a, _, _ = runs
        assert structural_diff(a, a).is_identical


class TestPerformanceDiff:
    def test_blocking_vs_nonblocking_exchange(self, runs):
        a, b, _ = runs
        mapper = ResourceMapper(version_maps("A", "B",
                                             build_poisson("A", CFG),
                                             build_poisson("B", CFG)))
        deltas = {d.resource: d for d in performance_diff(a, b, mapper=mapper)}
        exch = deltas["/Code/nbexchng.f/nbexchng1"]
        # B's overlapped exchange waits far less than A's blocking one
        assert exch.delta < -0.05

    def test_min_fraction_filter(self, runs):
        a, b, _ = runs
        deltas = performance_diff(a, b, min_fraction=0.9)
        assert deltas == []

    def test_sorted_by_magnitude(self, runs):
        a, _, c = runs
        deltas = performance_diff(a, c)
        mags = [abs(d.delta) for d in deltas]
        assert mags == sorted(mags, reverse=True)


class TestBottleneckDiff:
    def test_same_run_full_similarity(self, runs):
        a, _, _ = runs
        diff = bottleneck_diff(a, a)
        assert diff.jaccard == 1.0
        assert not diff.appeared and not diff.disappeared

    def test_cross_version_persistence(self, runs):
        a, b, _ = runs
        mapper = ResourceMapper(version_maps("A", "B",
                                             build_poisson("A", CFG),
                                             build_poisson("B", CFG)))
        diff = bottleneck_diff(a, b, mapper=mapper)
        # the paper: bottleneck locations largely persist across versions
        assert len(diff.persisted) > 0
        assert diff.jaccard > 0.2

    def test_report_renders(self, runs):
        a, b, _ = runs
        text = comparison_report(a, b)
        assert "Structural differences" in text
        assert "Bottleneck conclusions" in text


class TestQueries:
    def test_resource_history(self, store):
        history = resource_history(store, "/Code/diff.f/diff1d", activity="compute",
                                   run_ids=["cmp-A", "cmp-B"])
        assert len(history.points) == 2
        assert all(v >= 0 for v in history.values())

    def test_history_trend(self, store):
        history = resource_history(store, "/SyncObject/Message/1/-1",
                                   run_ids=["cmp-A", "cmp-B"])
        assert history.trend() == history.values()[-1] - history.values()[0]

    def test_unknown_resource_zero(self, store):
        history = resource_history(store, "/Code/ghost.c/fn", run_ids=["cmp-A"])
        assert history.values() == [0.0]

    def test_bottleneck_persistence_counts(self, store):
        counts = bottleneck_persistence(store, run_ids=["cmp-A", "cmp-B", "cmp-C"])
        assert counts
        assert max(counts.values()) <= 3
        wp_sync = [
            k for k in counts
            if k[0] == "ExcessiveSyncWaitingTime" and k[1].count("/") == 4
        ]
        assert wp_sync and counts[wp_sync[0]] == 3  # sync@wholeprogram in all

    def test_best_run(self, store):
        fastest = best_run(store, key=lambda r: r.finish_time)
        assert fastest is not None
        all_runs = [store.load(r) for r in store.list()]
        assert fastest.finish_time == min(r.finish_time for r in all_runs)

    def test_best_run_empty_store(self, tmp_path):
        assert best_run(ExperimentStore(tmp_path / "empty"), key=lambda r: 0) is None

    def test_select(self, store):
        heavy = select(store, lambda r: r.n_processes >= 4)
        assert len(heavy) == 3
        none = select(store, lambda r: r.n_processes > 100)
        assert none == []
