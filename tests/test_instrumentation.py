"""Tests for the dynamic instrumentation manager."""

import pytest

from repro.metrics import CostModel, InstrumentationManager, matched_processes
from repro.resources import Focus, ResourceSpace, whole_program
from repro.simulator import (
    Compute,
    Engine,
    IoOp,
    LatencyModel,
    Machine,
    Recv,
    Send,
)

LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)


def build(two_procs=False, cost_model=None, latency=0.0, cost_limit=100.0):
    """Engine with one (or two) processes, space, and a manager."""
    n = 2 if two_procs else 1
    eng = Engine(Machine.named("n", n), latency=LAT)
    space = ResourceSpace()
    space.add("/Code/m.c/f")
    space.add("/Code/m.c/g")
    for i in range(n):
        space.add(f"/Machine/n{i}")
        space.add(f"/Process/p:{i}")
    space.add("/SyncObject/Message/t/0")
    # perturbation off by default so timing assertions stay exact
    mgr = InstrumentationManager(
        eng, space, cost_model=cost_model or CostModel(perturb_per_unit=0.0),
        cost_limit=cost_limit, insertion_latency=latency,
    )
    return eng, space, mgr


def focus(space, **sels):
    f = whole_program(space)
    for h, p in sels.items():
        f = f.with_selection(h, p)
    return f


class TestMatchedProcesses:
    def test_whole_program_matches_all(self):
        eng, space, mgr = build(two_procs=True)

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p:0", "n0", prog)
        eng.add_process("p:1", "n1", prog)
        assert set(matched_processes(whole_program(space), eng)) == {"p:0", "p:1"}

    def test_process_constraint(self):
        eng, space, mgr = build(two_procs=True)

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p:0", "n0", prog)
        eng.add_process("p:1", "n1", prog)
        f = focus(space, Process="/Process/p:1")
        assert matched_processes(f, eng) == ("p:1",)

    def test_machine_constraint(self):
        eng, space, mgr = build(two_procs=True)

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p:0", "n0", prog)
        eng.add_process("p:1", "n1", prog)
        f = focus(space, Machine="/Machine/n0")
        assert matched_processes(f, eng) == ("p:0",)

    def test_conflicting_constraints_match_nothing(self):
        eng, space, mgr = build(two_procs=True)

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p:0", "n0", prog)
        eng.add_process("p:1", "n1", prog)
        f = focus(space, Machine="/Machine/n0", Process="/Process/p:1")
        assert matched_processes(f, eng) == ()


class TestAccumulation:
    def test_cpu_time_whole_program(self):
        eng, space, mgr = build()

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(3.0)

        eng.add_process("p:0", "n0", prog)
        h = mgr.request("cpu_time", whole_program(space))
        eng.run()
        value, elapsed = mgr.read(h)
        assert value == pytest.approx(3.0)
        assert elapsed == pytest.approx(3.0)

    def test_focus_filters_function(self):
        eng, space, mgr = build()

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(2.0)
            with proc.function("m.c", "g"):
                yield Compute(1.0)

        eng.add_process("p:0", "n0", prog)
        h = mgr.request("cpu_time", focus(space, Code="/Code/m.c/f"))
        eng.run()
        value, _ = mgr.read(h)
        assert value == pytest.approx(2.0)

    def test_insertion_latency_skips_early_time(self):
        eng, space, mgr = build(latency=1.0)

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(3.0)

        eng.add_process("p:0", "n0", prog)
        h = mgr.request("cpu_time", whole_program(space))
        eng.run()
        value, elapsed = mgr.read(h)
        # active from t=1: sees 2 of the 3 seconds
        assert value == pytest.approx(2.0)
        assert elapsed == pytest.approx(2.0)

    def test_mid_run_request_partial_overlap(self):
        eng, space, mgr = build()

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(2.0)
                yield Compute(2.0)

        eng.add_process("p:0", "n0", prog)
        eng.schedule(1.0, lambda: setattr(eng, "_h", mgr.request("cpu_time", whole_program(space))))
        eng.run()
        value, elapsed = mgr.read(eng._h)
        assert value == pytest.approx(3.0)  # half of first segment + second

    def test_read_includes_in_progress_sync(self):
        eng, space, mgr = build(two_procs=True)

        def p0(proc):
            with proc.function("m.c", "f"):
                yield Compute(10.0)
                yield Send("p:1", "t/0", 0)

        def p1(proc):
            with proc.function("m.c", "g"):
                yield Recv("p:0", "t/0")

        eng.add_process("p:0", "n0", p0)
        eng.add_process("p:1", "n1", p1)
        h = mgr.request("sync_wait_time", whole_program(space))
        readings = []
        eng.schedule(4.0, lambda: readings.append(mgr.read(h)))
        eng.run()
        value, elapsed = readings[0]
        assert value == pytest.approx(4.0)  # p:1 has been waiting 4s
        assert elapsed == pytest.approx(4.0)

    def test_delete_stops_accumulation(self):
        eng, space, mgr = build()

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(2.0)
                yield Compute(2.0)

        eng.add_process("p:0", "n0", prog)
        h = mgr.request("cpu_time", whole_program(space))
        eng.schedule(2.0, lambda: mgr.delete(h))
        eng.run()
        with pytest.raises(KeyError):
            mgr.read(h)

    def test_normalized_read_multiproc(self):
        eng, space, mgr = build(two_procs=True)

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(4.0)

        eng.add_process("p:0", "n0", prog)
        eng.add_process("p:1", "n1", prog)
        h = mgr.request("cpu_time", whole_program(space))
        eng.run()
        frac, elapsed = mgr.normalized_read(h)
        # both procs computing 100% of the time -> fraction 1.0
        assert frac == pytest.approx(1.0)


class TestCostAndPerturbation:
    def test_gate_accounts_requests_and_deletes(self):
        eng, space, mgr = build(cost_model=CostModel(base=0.1, per_process=0.2))

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p:0", "n0", prog)
        h = mgr.request("cpu_time", whole_program(space))
        assert mgr.total_cost == pytest.approx(0.3)
        mgr.delete(h)
        assert mgr.total_cost == pytest.approx(0.0)
        assert mgr.peak_cost == pytest.approx(0.3)

    def test_perturbation_follows_matched_processes(self):
        cm = CostModel(base=0.0, per_process=1.0, perturb_per_unit=0.1, max_overhead=10.0)
        eng, space, mgr = build(two_procs=True, cost_model=cm)

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p:0", "n0", prog)
        eng.add_process("p:1", "n1", prog)
        mgr.request("cpu_time", focus(space, Process="/Process/p:0"))
        assert eng.perturbation("p:0") == pytest.approx(0.1)
        assert eng.perturbation("p:1") == pytest.approx(0.0)

    def test_decimate_releases_cost_keeps_reading(self):
        eng, space, mgr = build(
            cost_model=CostModel(base=0.1, per_process=0.2, perturb_per_unit=0.0)
        )

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(2.0)
                yield Compute(2.0)

        eng.add_process("p:0", "n0", prog)
        h = mgr.request("cpu_time", whole_program(space), persistent=True)
        eng.schedule(2.0, lambda: mgr.decimate(h))
        eng.run()
        assert mgr.total_cost == pytest.approx(0.0)
        value, _ = mgr.read(h)
        assert value == pytest.approx(4.0)  # still accumulating after decimation

    def test_total_requests_counter(self):
        eng, space, mgr = build()

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p:0", "n0", prog)
        mgr.request("cpu_time", whole_program(space))
        mgr.request("sync_wait_time", whole_program(space))
        assert mgr.total_requests == 2
        assert mgr.active_count == 2
