"""Tests for metric definitions, the cost model, and the cost gate."""

import pytest

from repro.metrics import CostGate, CostModel, METRICS
from repro.simulator import Activity


class TestMetrics:
    def test_registry_complete(self):
        assert set(METRICS) == {
            "exec_time", "cpu_time", "sync_wait_time", "io_wait_time",
            "sync_op_count", "io_op_count",
        }

    def test_metric_kinds(self):
        assert METRICS["sync_wait_time"].kind == "time"
        assert METRICS["sync_op_count"].kind == "count"

    def test_cpu_counts_compute_only(self):
        m = METRICS["cpu_time"]
        assert m.counts(Activity.COMPUTE)
        assert not m.counts(Activity.SYNC)
        assert not m.counts(Activity.IO)

    def test_sync_counts_sync_only(self):
        m = METRICS["sync_wait_time"]
        assert m.counts(Activity.SYNC)
        assert not m.counts(Activity.COMPUTE)

    def test_exec_counts_everything(self):
        m = METRICS["exec_time"]
        assert all(m.counts(a) for a in Activity)


class TestCostModel:
    def test_pair_cost_scales_with_processes(self):
        cm = CostModel(base=0.05, per_process=0.15)
        assert cm.pair_cost(1) == pytest.approx(0.20)
        assert cm.pair_cost(4) == pytest.approx(0.65)

    def test_persistent_factor(self):
        cm = CostModel(base=0.0, per_process=0.1, persistent_cost_factor=0.5)
        assert cm.pair_cost(2, persistent=True) == pytest.approx(0.1)

    def test_overhead_capped(self):
        cm = CostModel(perturb_per_unit=0.01, max_overhead=0.35)
        assert cm.overhead_fraction(10.0) == pytest.approx(0.10)
        assert cm.overhead_fraction(1000.0) == pytest.approx(0.35)


class TestCostGate:
    def test_admits_under_limit(self):
        g = CostGate(10.0)
        assert g.can_admit(5.0)
        g.add(5.0)
        assert g.can_admit(4.0)
        assert not g.can_admit(6.0)

    def test_halts_at_limit_with_hysteresis(self):
        g = CostGate(10.0)
        g.add(10.0)
        assert g.halted
        g.remove(0.5)  # 9.5 > resume level 9.0
        assert g.halted
        assert not g.can_admit(0.1)
        g.remove(1.0)  # 8.5 <= 9.0 -> resume
        assert not g.halted
        assert g.can_admit(1.0)

    def test_peak_tracked(self):
        g = CostGate(10.0)
        g.add(4.0)
        g.add(3.0)
        g.remove(5.0)
        assert g.peak == pytest.approx(7.0)

    def test_remove_never_negative(self):
        g = CostGate(10.0)
        g.add(1.0)
        g.remove(5.0)
        assert g.total == 0.0

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            CostGate(0.0)
