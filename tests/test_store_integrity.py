"""Store integrity: payload checksums, quarantine, and recovery reports."""

import json

import pytest

from repro.storage import ExperimentStore, RunRecord, StoreCorruption, StoreError


def _tiny_record(run_id: str) -> RunRecord:
    return RunRecord(
        run_id=run_id,
        app_name="integrity",
        version="1",
        n_processes=1,
        nodes=["n0"],
        placement={"p0": "n0"},
        hierarchies={"Code": ["/Code"]},
        shg_nodes=[],
        profile={},
        finish_time=1.0,
        search_done_time=None,
        pairs_tested=0,
        total_requests=0,
        peak_cost=0.0,
    )


def _tamper(path, **changes):
    data = json.loads(path.read_text())
    data["record"].update(changes)
    path.write_text(json.dumps(data))


class TestChecksums:
    def test_round_trip_verifies(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(_tiny_record("r0"))
        data = json.loads((tmp_path / "runs" / "r0.json").read_text())
        assert data["format"] == 2
        assert len(data["sha256"]) == 64
        assert store.load("r0").run_id == "r0"

    def test_tampered_payload_quarantined_on_load(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(_tiny_record("r0"))
        _tamper(tmp_path / "runs" / "r0.json", pairs_tested=9999)
        with pytest.raises(StoreCorruption, match="checksum mismatch") as info:
            store.load("r0")
        assert info.value.quarantined_to == tmp_path / "runs" / "quarantine" / "r0.json"
        assert info.value.quarantined_to.exists()
        assert not (tmp_path / "runs" / "r0.json").exists()
        assert "r0" not in store.list()  # dropped from the index too
        with pytest.raises(StoreError, match="no stored run"):
            store.load("r0")

    def test_unparseable_file_quarantined_on_load(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(_tiny_record("r0"))
        (tmp_path / "runs" / "r0.json").write_text("{ not json")
        with pytest.raises(StoreCorruption, match="unparseable"):
            store.load("r0")
        assert (tmp_path / "runs" / "quarantine" / "r0.json").exists()

    def test_legacy_checksumless_record_still_loads(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(_tiny_record("r0"))
        # rewrite as a bare format-1 payload (pre-checksum store layout)
        path = tmp_path / "runs" / "r0.json"
        payload = json.loads(path.read_text())["record"]
        path.write_text(json.dumps(payload))
        assert store.load("r0").run_id == "r0"

    def test_quarantine_names_never_collide(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        for _ in range(2):
            store.save(_tiny_record("r0"), overwrite=True)
            _tamper(tmp_path / "runs" / "r0.json", version="99")
            with pytest.raises(StoreCorruption):
                store.load("r0")
            store.save(_tiny_record("r0"), overwrite=True)
            _tamper(tmp_path / "runs" / "r0.json", version="98")
            with pytest.raises(StoreCorruption):
                store.load("r0")
        qdir = tmp_path / "runs" / "quarantine"
        assert len(list(qdir.glob("r0*.json"))) == 4


class TestRebuildReport:
    def test_rebuild_reports_kept_and_quarantined(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        for i in range(3):
            store.save(_tiny_record(f"r{i}"))
        _tamper(tmp_path / "runs" / "r1.json", pairs_tested=5)
        (tmp_path / "runs" / "garbage.json").write_text("][")
        report = store.rebuild_index()
        assert sorted(report.kept) == ["r0", "r2"]
        assert report.count == 2
        assert len(report.quarantined) == 2
        assert sorted(store.list()) == ["r0", "r2"]
        qdir = tmp_path / "runs" / "quarantine"
        assert {p.name for p in qdir.iterdir()} == {"r1.json", "garbage.json"}
        assert "quarantined" in str(report)

    def test_rebuild_skips_quarantine_directory(self, tmp_path):
        """A second rebuild must not re-process already-quarantined files."""
        store = ExperimentStore(tmp_path / "runs")
        store.save(_tiny_record("r0"))
        (tmp_path / "runs" / "bad.json").write_text("nope")
        first = store.rebuild_index()
        assert len(first.quarantined) == 1
        second = store.rebuild_index()
        assert second.kept == ["r0"]
        assert second.quarantined == []
