"""Hierarchy-prefix dispatch in cross-execution resource queries.

Regression coverage for the old ``_fraction`` behaviour of scanning the
profile tables in a fixed order: a process that shared its name with a
node (or tag) silently read whichever table happened to come first.
"""

import pytest

from repro.storage.query import AmbiguousResourceError, _fraction, resource_history
from repro.storage.records import RunRecord
from repro.storage.store import ExperimentStore


def make_record(run_id="r1", by_code=None, by_process=None, by_node=None,
                by_tag=None, total=10.0):
    return RunRecord(
        run_id=run_id, app_name="app", version="1", n_processes=1,
        nodes=["n0"], placement={},
        hierarchies={"Code": [], "Process": [], "Machine": [], "SyncObject": []},
        shg_nodes=[],
        profile={
            "by_code": by_code or {},
            "by_process": by_process or {},
            "by_node": by_node or {},
            "by_tag": by_tag or {},
            "totals": {"compute": total},
            "elapsed": total,
        },
        finish_time=total, search_done_time=None,
        pairs_tested=0, total_requests=0, peak_cost=0.0,
    )


# A name collision: "alpha" is both a process and a machine node, with
# different sync costs.  A fixed-order scan always returns the process
# figure, whichever hierarchy was asked about.
COLLIDING = make_record(
    by_process={"/Process/alpha": {"sync": 5.0}},
    by_node={"/Machine/alpha": {"sync": 1.0}},
)


class TestPathDispatch:
    def test_prefix_selects_the_right_table(self):
        assert _fraction(COLLIDING, "/Process/alpha", "sync") == pytest.approx(0.5)
        assert _fraction(COLLIDING, "/Machine/alpha", "sync") == pytest.approx(0.1)

    def test_unknown_hierarchy_is_zero(self):
        assert _fraction(COLLIDING, "/Widget/alpha", "sync") == 0.0

    def test_missing_resource_is_zero(self):
        assert _fraction(COLLIDING, "/Process/beta", "sync") == 0.0

    def test_foreign_profile_bare_key_fallback(self):
        # Foreign profiles sometimes key tables by bare names; the path's
        # last component still resolves inside the dispatched table only.
        record = make_record(
            by_process={"alpha": {"sync": 5.0}},
            by_node={"alpha": {"sync": 1.0}},
        )
        assert _fraction(record, "/Machine/alpha", "sync") == pytest.approx(0.1)
        assert _fraction(record, "/Process/alpha", "sync") == pytest.approx(0.5)


class TestBareNames:
    def test_unambiguous_bare_name_resolves(self):
        record = make_record(by_code={"main": {"compute": 2.0}})
        assert _fraction(record, "main", "compute") == pytest.approx(0.2)

    def test_ambiguous_bare_name_raises(self):
        record = make_record(
            by_process={"alpha": {"sync": 5.0}},
            by_node={"alpha": {"sync": 1.0}},
        )
        with pytest.raises(AmbiguousResourceError, match="alpha"):
            _fraction(record, "alpha", "sync")

    def test_unknown_bare_name_is_zero(self):
        assert _fraction(COLLIDING, "nonesuch", "sync") == 0.0

    def test_zero_total_short_circuits(self):
        record = make_record(total=0.0)
        assert _fraction(record, "anything", "sync") == 0.0


class TestResourceHistory:
    def test_history_uses_dispatch(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(COLLIDING)
        history = resource_history(store, "/Machine/alpha", activity="sync")
        assert history.values() == [pytest.approx(0.1)]
