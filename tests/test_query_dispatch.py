"""Hierarchy-prefix dispatch in cross-execution resource queries.

Regression coverage for the old ``_fraction`` behaviour of scanning the
profile tables in a fixed order: a process that shared its name with a
node (or tag) silently read whichever table happened to come first.
"""

import pytest

from repro.storage.query import (
    AmbiguousResourceError,
    _fraction,
    _summary_fraction,
    best_run,
    bottleneck_persistence,
    resource_history,
)
from repro.storage.records import RunRecord
from repro.storage.store import ExperimentStore, summarize_record


def make_record(run_id="r1", by_code=None, by_process=None, by_node=None,
                by_tag=None, total=10.0):
    return RunRecord(
        run_id=run_id, app_name="app", version="1", n_processes=1,
        nodes=["n0"], placement={},
        hierarchies={"Code": [], "Process": [], "Machine": [], "SyncObject": []},
        shg_nodes=[],
        profile={
            "by_code": by_code or {},
            "by_process": by_process or {},
            "by_node": by_node or {},
            "by_tag": by_tag or {},
            "totals": {"compute": total},
            "elapsed": total,
        },
        finish_time=total, search_done_time=None,
        pairs_tested=0, total_requests=0, peak_cost=0.0,
    )


# A name collision: "alpha" is both a process and a machine node, with
# different sync costs.  A fixed-order scan always returns the process
# figure, whichever hierarchy was asked about.
COLLIDING = make_record(
    by_process={"/Process/alpha": {"sync": 5.0}},
    by_node={"/Machine/alpha": {"sync": 1.0}},
)


class TestPathDispatch:
    def test_prefix_selects_the_right_table(self):
        assert _fraction(COLLIDING, "/Process/alpha", "sync") == pytest.approx(0.5)
        assert _fraction(COLLIDING, "/Machine/alpha", "sync") == pytest.approx(0.1)

    def test_unknown_hierarchy_is_zero(self):
        assert _fraction(COLLIDING, "/Widget/alpha", "sync") == 0.0

    def test_missing_resource_is_zero(self):
        assert _fraction(COLLIDING, "/Process/beta", "sync") == 0.0

    def test_foreign_profile_bare_key_fallback(self):
        # Foreign profiles sometimes key tables by bare names; the path's
        # last component still resolves inside the dispatched table only.
        record = make_record(
            by_process={"alpha": {"sync": 5.0}},
            by_node={"alpha": {"sync": 1.0}},
        )
        assert _fraction(record, "/Machine/alpha", "sync") == pytest.approx(0.1)
        assert _fraction(record, "/Process/alpha", "sync") == pytest.approx(0.5)

    def test_qualified_miss_never_matches_unrelated_bare_key(self):
        # Regression: the table is path-keyed (a native profile), so a
        # fully-qualified path that misses must NOT silently resolve
        # against a bare-keyed entry for a *different* resource.
        record = make_record(
            by_node={"/Machine/node0": {"sync": 1.0}, "alpha": {"sync": 5.0}},
        )
        assert _fraction(record, "/Machine/alpha", "sync") == 0.0
        # the path-keyed entry itself still resolves
        assert _fraction(record, "/Machine/node0", "sync") == pytest.approx(0.1)


class TestBareNames:
    def test_unambiguous_bare_name_resolves(self):
        record = make_record(by_code={"main": {"compute": 2.0}})
        assert _fraction(record, "main", "compute") == pytest.approx(0.2)

    def test_ambiguous_bare_name_raises(self):
        record = make_record(
            by_process={"alpha": {"sync": 5.0}},
            by_node={"alpha": {"sync": 1.0}},
        )
        with pytest.raises(AmbiguousResourceError, match="alpha"):
            _fraction(record, "alpha", "sync")

    def test_unknown_bare_name_is_zero(self):
        assert _fraction(COLLIDING, "nonesuch", "sync") == 0.0

    def test_zero_total_short_circuits(self):
        record = make_record(total=0.0)
        assert _fraction(record, "anything", "sync") == 0.0


class TestResourceHistory:
    def test_history_uses_dispatch(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(COLLIDING)
        history = resource_history(store, "/Machine/alpha", activity="sync")
        assert history.values() == [pytest.approx(0.1)]


TRUE_NODE = {
    "id": 0, "hypothesis": "CPUbound",
    "focus": "< /Code/a.c/f, /Machine, /Process, /SyncObject >",
    "state": "true", "priority": "medium", "persistent": False,
    "value": 0.4, "t_requested": 0.0, "t_concluded": 1.0,
    "quality": None, "parents": [], "children": [],
}


class TestSummaryFraction:
    def test_matches_record_fraction(self):
        summary = summarize_record(COLLIDING)
        for resource in (
            "/Process/alpha", "/Machine/alpha", "/Process/beta",
            "/Widget/alpha", "nonesuch",
        ):
            assert _summary_fraction(summary, resource, "sync") == (
                pytest.approx(_fraction(COLLIDING, resource, "sync"))
            )

    def test_ambiguous_bare_name_raises_from_summary(self):
        record = make_record(
            by_process={"alpha": {"sync": 5.0}},
            by_node={"alpha": {"sync": 1.0}},
        )
        with pytest.raises(AmbiguousResourceError, match="alpha"):
            _summary_fraction(summarize_record(record), "alpha", "sync")


class TestIndexAnsweredQueries:
    """The cross-run queries answer from the index, parsing no records."""

    @pytest.fixture()
    def store(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record(run_id="q1", by_code={"/Code/a.c/f": {"compute": 4.0}}))
        rec = make_record(run_id="q2", by_code={"/Code/a.c/f": {"compute": 6.0}})
        rec.shg_nodes = [TRUE_NODE]
        rec.finish_time = 5.0
        store.save(rec)
        # a fresh instance with record loading forbidden: every query
        # below must be served by the index summaries alone
        fresh = ExperimentStore(tmp_path / "runs")
        fresh.load = lambda run_id: pytest.fail(
            f"query deserialized record {run_id!r}"
        )
        return fresh

    def test_bottleneck_persistence_from_index(self, store):
        counts = bottleneck_persistence(store)
        assert counts == {
            ("CPUbound", "< /Code/a.c/f, /Machine, /Process, /SyncObject >"): 1
        }

    def test_resource_history_from_index(self, store):
        history = resource_history(store, "/Code/a.c/f", activity="compute")
        assert history.points == (
            ("q1", pytest.approx(0.4)), ("q2", pytest.approx(0.6)),
        )


class TestBestRunStringKey:
    def test_string_key_loads_only_the_winner(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record(run_id="slow", total=20.0))
        store.save(make_record(run_id="fast", total=2.0))
        fresh = ExperimentStore(tmp_path / "runs")
        loaded = []
        original = ExperimentStore.load
        fresh.load = lambda run_id: loaded.append(run_id) or original(fresh, run_id)
        assert best_run(fresh, "duration").run_id == "fast"
        assert loaded == ["fast"]

    def test_string_key_matches_callable(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record(run_id="slow", total=20.0))
        store.save(make_record(run_id="fast", total=2.0))
        by_name = best_run(store, "duration", minimize=True)
        by_call = best_run(store, lambda r: r.finish_time, minimize=True)
        assert by_name.run_id == by_call.run_id == "fast"

    def test_unknown_string_key_rejected(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        with pytest.raises(ValueError, match="unknown summary metric"):
            best_run(store, "vibes")
