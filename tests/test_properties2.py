"""Second round of property-based tests: directive algebra, SHG, mapping."""

from hypothesis import given, settings, strategies as st

from repro.analysis.bottlenecks import canonicalize_focus
from repro.core import (
    DirectiveSet,
    MapDirective,
    PairPruneDirective,
    PriorityDirective,
    PruneDirective,
    ThresholdDirective,
    intersect_directives,
    union_directives,
)
from repro.core.mapping import ResourceMapper
from repro.core.shg import Priority, SearchHistoryGraph
from repro.resources import Focus, whole_program

SYNC = "ExcessiveSyncWaitingTime"
CPU = "CPUbound"

# -- strategies ---------------------------------------------------------------
component = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="._:-"),
    min_size=1,
    max_size=6,
)

code_path = st.lists(component, min_size=1, max_size=2).map(
    lambda parts: "/Code/" + "/".join(parts)
)

focus_strategy = code_path.map(
    lambda p: whole_program().with_selection("Code", p)
)

priority_strategy = st.builds(
    PriorityDirective,
    st.sampled_from([SYNC, CPU]),
    focus_strategy,
    st.sampled_from([Priority.HIGH, Priority.LOW]),
)

directive_set_strategy = st.builds(
    DirectiveSet,
    prunes=st.lists(
        st.builds(PruneDirective, st.sampled_from(["*", SYNC]), code_path), max_size=4
    ),
    pair_prunes=st.lists(
        st.builds(PairPruneDirective, st.just(SYNC), focus_strategy), max_size=3
    ),
    priorities=st.lists(priority_strategy, max_size=6),
    thresholds=st.lists(
        st.builds(ThresholdDirective, st.just(SYNC), st.floats(0.01, 0.9)), max_size=2
    ),
    maps=st.lists(st.builds(MapDirective, code_path, code_path), max_size=3),
)


class TestDirectiveTextRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(directive_set_strategy)
    def test_text_roundtrip_preserves_counts(self, ds):
        clone = DirectiveSet.from_text(ds.to_text())
        assert len(clone.prunes) == len(ds.prunes)
        assert len(clone.pair_prunes) == len(ds.pair_prunes)
        assert len(clone.priorities) == len(ds.priorities)
        assert len(clone.thresholds) == len(ds.thresholds)
        assert len(clone.maps) == len(ds.maps)

    @settings(max_examples=60, deadline=None)
    @given(directive_set_strategy)
    def test_text_roundtrip_idempotent(self, ds):
        once = DirectiveSet.from_text(ds.to_text())
        twice = DirectiveSet.from_text(once.to_text())
        assert once.to_text() == twice.to_text()


class TestCombinationAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(directive_set_strategy, directive_set_strategy)
    def test_union_high_superset_of_intersection(self, a, b):
        u = union_directives(a, b)
        i = intersect_directives(a, b)
        u_high = {(p.hypothesis, str(p.focus)) for p in u.priorities
                  if p.level is Priority.HIGH}
        i_high = {(p.hypothesis, str(p.focus)) for p in i.priorities
                  if p.level is Priority.HIGH}
        assert i_high <= u_high

    @settings(max_examples=40, deadline=None)
    @given(directive_set_strategy, directive_set_strategy)
    def test_commutative(self, a, b):
        assert union_directives(a, b).to_text() == union_directives(b, a).to_text()
        assert (
            intersect_directives(a, b).to_text()
            == intersect_directives(b, a).to_text()
        )

    @settings(max_examples=40, deadline=None)
    @given(directive_set_strategy)
    def test_self_combination_idempotent_on_priorities(self, a):
        u = union_directives(a, a)
        # the same pair never appears at two levels after combination
        keys = [(p.hypothesis, str(p.focus)) for p in u.priorities]
        assert len(keys) == len(set(keys))

    @settings(max_examples=40, deadline=None)
    @given(directive_set_strategy)
    def test_no_pair_both_high_and_low(self, a):
        for combined in (union_directives(a, a), intersect_directives(a, a)):
            by_key = {}
            for p in combined.priorities:
                key = (p.hypothesis, str(p.focus))
                assert key not in by_key
                by_key[key] = p.level


class TestSHGProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(code_path, min_size=1, max_size=20))
    def test_dedup_by_pair(self, paths):
        shg = SearchHistoryGraph()
        for path in paths:
            focus = whole_program().with_selection("Code", path)
            shg.add(SYNC, focus)
        assert len(shg) == len({p for p in paths})

    @settings(max_examples=50, deadline=None)
    @given(st.lists(code_path, min_size=1, max_size=15))
    def test_serialization_roundtrip(self, paths):
        shg = SearchHistoryGraph()
        parent, _ = shg.add(SYNC, whole_program())
        for path in paths:
            shg.add(SYNC, whole_program().with_selection("Code", path), parent=parent)
        clone = SearchHistoryGraph.from_dicts(shg.to_dicts())
        assert len(clone) == len(shg)
        assert clone.to_dicts() == shg.to_dicts()


class TestMapperProperties:
    @settings(max_examples=50, deadline=None)
    @given(code_path, code_path, code_path)
    def test_longest_prefix_beats_shorter(self, base, target1, target2):
        deeper = base + "/leaf"
        mapper = ResourceMapper([
            MapDirective(base, target1),
            MapDirective(deeper, target2),
        ])
        assert mapper.map_path(deeper) == target2

    @settings(max_examples=50, deadline=None)
    @given(code_path)
    def test_canonicalize_idempotent(self, path):
        focus = str(whole_program().with_selection("Code", path))
        placement = {"p:1": "n0", "p:2": "n1"}
        once = canonicalize_focus(focus, placement)
        assert canonicalize_focus(once, placement) == once

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(["n0", "n1"]))
    def test_canonicalize_machine_always_removed(self, node):
        placement = {"p:1": "n0", "p:2": "n1"}
        focus = str(whole_program().with_selection("Machine", f"/Machine/{node}"))
        out = canonicalize_focus(focus, placement)
        assert "/Machine/" not in out
        assert "/Process/p:" in out
