"""Tests for the hypothesis tree."""

import pytest

from repro.core.hypotheses import TOP_LEVEL, Hypothesis, HypothesisTree, standard_tree


class TestStandardTree:
    def test_root_is_virtual(self):
        tree = standard_tree()
        assert tree.root.is_virtual
        assert tree.root.name == TOP_LEVEL

    def test_children_of_root(self):
        tree = standard_tree()
        names = [h.name for h in tree.children(TOP_LEVEL)]
        assert names == [
            "CPUbound",
            "ExcessiveSyncWaitingTime",
            "ExcessiveIOBlockingTime",
        ]

    def test_sync_related_flag(self):
        tree = standard_tree()
        assert tree.get("ExcessiveSyncWaitingTime").sync_related
        assert not tree.get("CPUbound").sync_related

    def test_metrics_exist(self):
        from repro.metrics import METRICS

        tree = standard_tree()
        for h in tree.testable():
            assert h.metric in METRICS

    def test_default_sync_threshold_is_paradyn_default(self):
        # the paper reports standard Paradyn's default of 20% (Section 4.2)
        assert standard_tree().get("ExcessiveSyncWaitingTime").default_threshold == 0.20

    def test_threshold_override(self):
        tree = standard_tree()
        assert tree.threshold("ExcessiveSyncWaitingTime", {"ExcessiveSyncWaitingTime": 0.12}) == 0.12
        assert tree.threshold("ExcessiveSyncWaitingTime", {}) == 0.20

    def test_contains_and_get(self):
        tree = standard_tree()
        assert "CPUbound" in tree
        with pytest.raises(KeyError):
            tree.get("Nonsense")


class TestValidation:
    def test_requires_top_level(self):
        with pytest.raises(ValueError):
            HypothesisTree([Hypothesis("X", "cpu_time", 0.5)])

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            HypothesisTree(
                [
                    Hypothesis(TOP_LEVEL, None, 0.0),
                    Hypothesis("A", "cpu_time", 0.5),
                    Hypothesis("A", "cpu_time", 0.5),
                ]
            )

    def test_unknown_child(self):
        with pytest.raises(ValueError):
            HypothesisTree([Hypothesis(TOP_LEVEL, None, 0.0, children=("Ghost",))])

    def test_testable_excludes_virtual(self):
        tree = standard_tree()
        assert TOP_LEVEL not in [h.name for h in tree.testable()]
