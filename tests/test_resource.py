"""Unit tests for resource hierarchies and resource spaces."""

import pytest

from repro.resources import (
    ResourceHierarchy,
    ResourceNameError,
    ResourceSpace,
    STANDARD_HIERARCHIES,
)


class TestResourceHierarchy:
    def test_root_name(self):
        h = ResourceHierarchy("Code")
        assert h.root.name == "/Code"
        assert h.root.label == "Code"

    def test_add_creates_intermediates(self):
        h = ResourceHierarchy("Code")
        leaf = h.add("/Code/a.c/f")
        assert leaf.name == "/Code/a.c/f"
        assert "/Code/a.c" in h
        assert h.find("/Code/a.c").parent is h.root

    def test_add_idempotent(self):
        h = ResourceHierarchy("Code")
        a = h.add("/Code/a.c")
        b = h.add("/Code/a.c")
        assert a is b
        assert len(h) == 2  # root + module

    def test_add_wrong_hierarchy(self):
        h = ResourceHierarchy("Code")
        with pytest.raises(ResourceNameError):
            h.add("/Machine/n0")

    def test_names_preorder(self):
        h = ResourceHierarchy("Code")
        h.add("/Code/a.c/f")
        h.add("/Code/b.c")
        assert h.names() == ["/Code", "/Code/a.c", "/Code/a.c/f", "/Code/b.c"]

    def test_leaves(self):
        h = ResourceHierarchy("Code")
        h.add("/Code/a.c/f")
        h.add("/Code/a.c/g")
        assert {r.name for r in h.leaves()} == {"/Code/a.c/f", "/Code/a.c/g"}

    def test_children_of(self):
        h = ResourceHierarchy("Code")
        h.add("/Code/a.c/f")
        assert [r.name for r in h.children_of("/Code/a.c")] == ["/Code/a.c/f"]
        assert h.children_of("/Code/nope") == []

    def test_bad_hierarchy_name(self):
        with pytest.raises(ResourceNameError):
            ResourceHierarchy("has/slash")

    def test_tags_propagate_to_ancestors(self):
        h = ResourceHierarchy("Code")
        h.add("/Code/a.c/f", tag="run1")
        assert "run1" in h.find("/Code/a.c").tags
        assert "run1" in h.root.tags

    def test_merge_tags_origin(self):
        a = ResourceHierarchy("Code")
        a.add("/Code/oned.f/main")
        b = ResourceHierarchy("Code")
        b.add("/Code/onednb.f/main")
        merged = a.merge(b, tag_self="A", tag_other="B")
        assert merged.find("/Code/oned.f").tags == {"A"}
        assert merged.find("/Code/onednb.f").tags == {"B"}

    def test_merge_wrong_name(self):
        a = ResourceHierarchy("Code")
        b = ResourceHierarchy("Machine")
        with pytest.raises(ResourceNameError):
            a.merge(b)


class TestResourceSpace:
    def test_standard_hierarchies(self):
        space = ResourceSpace()
        assert set(space.hierarchies) == set(STANDARD_HIERARCHIES)

    def test_add_routes_to_hierarchy(self):
        space = ResourceSpace()
        space.add("/Code/a.c/f")
        space.add("/Machine/n0")
        assert "/Code/a.c/f" in space
        assert "/Machine/n0" in space
        assert "/Machine/n1" not in space

    def test_unknown_hierarchy(self):
        space = ResourceSpace()
        with pytest.raises(ResourceNameError):
            space.add("/Bogus/x")

    def test_find_unknown_hierarchy_returns_none(self):
        space = ResourceSpace(("Code",))
        assert space.find("/Machine/n0") is None

    def test_root_paths(self):
        space = ResourceSpace(("Code", "Machine"))
        assert space.root_paths() == {"Code": "/Code", "Machine": "/Machine"}

    def test_copy_independent(self):
        space = ResourceSpace()
        space.add("/Code/a.c")
        dup = space.copy()
        dup.add("/Code/b.c")
        assert "/Code/b.c" not in space
        assert "/Code/a.c" in dup

    def test_bijection_true(self):
        space = ResourceSpace()
        for i in range(4):
            space.add(f"/Process/p:{i}")
            space.add(f"/Machine/n{i}")
        assert space.process_machine_bijection()

    def test_bijection_false_when_uneven(self):
        space = ResourceSpace()
        for i in range(4):
            space.add(f"/Process/p:{i}")
        space.add("/Machine/n0")
        assert not space.process_machine_bijection()

    def test_bijection_false_when_empty(self):
        assert not ResourceSpace().process_machine_bijection()
