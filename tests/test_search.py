"""Search tests on synthetic workloads with known ground truth."""

import pytest

from repro.apps.synthetic import make_compute_app, make_io_app, make_pingpong
from repro.core import (
    DirectiveSet,
    PairPruneDirective,
    PriorityDirective,
    PruneDirective,
    SearchConfig,
    run_diagnosis,
)
from repro.core.shg import NodeState, Priority
from repro.metrics import CostModel
from repro.resources import parse_focus, whole_program

SYNC = "ExcessiveSyncWaitingTime"
CPU = "CPUbound"
IO = "ExcessiveIOBlockingTime"

FAST = SearchConfig(
    min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0,
    noise_band=0.0,
)


def quiet_cost():
    return CostModel(perturb_per_unit=0.0)


def wp_pair(hyp):
    return (hyp, str(whole_program()))


class TestBasicConclusions:
    def test_cpu_bound_app_found(self):
        app = make_compute_app({("hot.c", "kernel"): 0.97}, iterations=60)
        rec = run_diagnosis(app, config=FAST, cost_model=quiet_cost())
        trues = dict.fromkeys(rec.true_pairs())
        assert (CPU, str(whole_program())) in trues
        # refined to the hot function
        assert any("/Code/hot.c/kernel" in f for h, f in trues if h == CPU)

    def test_balanced_app_no_cpu_bottleneck(self):
        # half compute, half blocking I/O: CPU fraction 0.5 < 0.9 threshold
        app = make_io_app(iterations=60, compute=0.5, io=0.5)
        rec = run_diagnosis(app, config=FAST, cost_model=quiet_cost())
        assert (CPU, str(whole_program())) not in rec.true_pairs()

    def test_sync_bottleneck_found_with_tag(self):
        app = make_pingpong(iterations=80, slow=1.0, fast=0.2)
        rec = run_diagnosis(app, config=FAST, cost_model=quiet_cost())
        trues = rec.true_pairs()
        assert (SYNC, str(whole_program())) in trues
        assert any("/SyncObject/Message/9/0" in f for h, f in trues if h == SYNC)
        assert any("/Process/pp:2" in f for h, f in trues if h == SYNC)

    def test_io_bottleneck_found(self):
        app = make_io_app(iterations=40, compute=0.2, io=0.8)
        rec = run_diagnosis(app, config=FAST, cost_model=quiet_cost())
        trues = rec.true_pairs()
        assert (IO, str(whole_program())) in trues
        assert any("/Code/wr.c/flush" in f for h, f in trues if h == IO)

    def test_false_nodes_not_refined(self):
        app = make_compute_app({("hot.c", "kernel"): 0.97}, iterations=60)
        rec = run_diagnosis(app, config=FAST, cost_model=quiet_cost())
        shg = rec.shg()
        for node in shg:
            if node.state is NodeState.FALSE:
                for cid in node.children:
                    child = shg.nodes[cid]
                    # children of false nodes must have another (true) parent
                    assert any(
                        shg.nodes[p].state in (NodeState.TRUE,) for p in child.parents
                    )

    def test_values_recorded(self):
        app = make_io_app(iterations=40, compute=0.2, io=0.8)
        rec = run_diagnosis(app, config=FAST, cost_model=quiet_cost())
        node = next(
            n for n in rec.shg_nodes
            if n["hypothesis"] == IO and n["state"] == "true"
            and n["focus"] == str(whole_program())
        )
        assert node["value"] == pytest.approx(0.8, abs=0.08)


class TestPrunesInSearch:
    def test_pruned_subtree_never_tested(self):
        app = make_compute_app({("hot.c", "kernel"): 0.97}, iterations=60)
        ds = DirectiveSet(prunes=[PruneDirective(CPU, "/Code/hot.c")])
        rec = run_diagnosis(app, directives=ds, config=FAST, cost_model=quiet_cost())
        for n in rec.shg_nodes:
            if "/Code/hot.c" in n["focus"] and n["hypothesis"] == CPU:
                assert n["state"] == "pruned"

    def test_pair_prune_skips_exact_pair(self):
        app = make_compute_app({("hot.c", "kernel"): 0.97}, iterations=60)
        target = whole_program().with_selection("Code", "/Code/hot.c")
        ds = DirectiveSet(pair_prunes=[PairPruneDirective(CPU, target)])
        rec = run_diagnosis(app, directives=ds, config=FAST, cost_model=quiet_cost())
        states = {(n["hypothesis"], n["focus"]): n["state"] for n in rec.shg_nodes}
        assert states[(CPU, str(target))] == "pruned"

    def test_pruned_counts_excluded_from_tested(self):
        app = make_compute_app({("hot.c", "kernel"): 0.97}, iterations=60)
        base = run_diagnosis(app, config=FAST, cost_model=quiet_cost())
        app2 = make_compute_app({("hot.c", "kernel"): 0.97}, iterations=60)
        ds = DirectiveSet(prunes=[PruneDirective("*", "/Machine")])
        pruned = run_diagnosis(app2, directives=ds, config=FAST, cost_model=quiet_cost())
        assert pruned.pairs_tested < base.pairs_tested


class TestPrioritiesInSearch:
    def test_high_priority_found_first(self):
        app = make_pingpong(iterations=120, slow=1.0, fast=0.2)
        deep = (
            whole_program()
            .with_selection("Code", "/Code/pp.c/driver")
            .with_selection("Process", "/Process/pp:2")
        )
        ds = DirectiveSet(priorities=[PriorityDirective(SYNC, deep, Priority.HIGH)])
        rec = run_diagnosis(app, directives=ds, config=FAST, cost_model=quiet_cost())
        found = rec.found_times()
        t_deep = found[(SYNC, str(deep))]
        t_wp = found[(SYNC, str(whole_program()))]
        assert t_deep <= t_wp  # started at search start, not via refinement

    def test_high_priority_nodes_persistent(self):
        app = make_pingpong(iterations=120)
        deep = whole_program().with_selection("Process", "/Process/pp:2")
        ds = DirectiveSet(priorities=[PriorityDirective(SYNC, deep, Priority.HIGH)])
        rec = run_diagnosis(app, directives=ds, config=FAST, cost_model=quiet_cost())
        node = next(n for n in rec.shg_nodes if n["focus"] == str(deep) and n["hypothesis"] == SYNC)
        assert node["persistent"]

    def test_pruned_high_priority_not_started(self):
        app = make_pingpong(iterations=100)
        deep = whole_program().with_selection("Process", "/Process/pp:2")
        ds = DirectiveSet(
            priorities=[PriorityDirective(SYNC, deep, Priority.HIGH)],
            prunes=[PruneDirective("*", "/Process")],
        )
        rec = run_diagnosis(app, directives=ds, config=FAST, cost_model=quiet_cost())
        node = [n for n in rec.shg_nodes if n["focus"] == str(deep) and n["hypothesis"] == SYNC]
        assert not node or node[0]["state"] in ("pruned", "never-run")


class TestThresholdsInSearch:
    def test_threshold_directive_changes_conclusion(self):
        app = make_io_app(iterations=40, compute=0.5, io=0.5)
        # default IO threshold 0.15 -> true; directive 0.6 -> false
        from repro.core import ThresholdDirective

        ds = DirectiveSet(thresholds=[ThresholdDirective(IO, 0.6)])
        rec = run_diagnosis(app, directives=ds, config=FAST, cost_model=quiet_cost())
        assert (IO, str(whole_program())) not in rec.true_pairs()

    def test_config_override_weaker_than_directive(self):
        from repro.core import ThresholdDirective

        app = make_io_app(iterations=40, compute=0.5, io=0.5)
        cfg = SearchConfig(
            min_interval=5.0, check_period=0.5, insertion_latency=0.2,
            cost_limit=50.0, noise_band=0.0,
            threshold_overrides={IO: 0.9},
        )
        ds = DirectiveSet(thresholds=[ThresholdDirective(IO, 0.1)])
        rec = run_diagnosis(app, directives=ds, config=cfg, cost_model=quiet_cost())
        assert (IO, str(whole_program())) in rec.true_pairs()
        assert rec.thresholds[IO] == pytest.approx(0.1)


class TestCostGateInSearch:
    def test_tight_gate_staggers_requests(self):
        app = make_pingpong(iterations=200, slow=1.0, fast=0.2)
        tight = SearchConfig(
            min_interval=5.0, check_period=0.5, insertion_latency=0.2,
            cost_limit=0.7, noise_band=0.0,
        )
        rec = run_diagnosis(app, config=tight, cost_model=quiet_cost())
        # requests must span time rather than all landing at the start
        t_req = [n["t_requested"] for n in rec.shg_nodes if n["t_requested"] is not None]
        assert max(t_req) > 10.0
        assert rec.peak_cost <= 0.7 + 1e-9

    def test_app_end_marks_leftovers(self):
        app = make_pingpong(iterations=10, slow=1.0, fast=0.2)  # very short run
        slow_cfg = SearchConfig(
            min_interval=6.0, check_period=0.5, insertion_latency=0.2, cost_limit=0.7,
        )
        rec = run_diagnosis(app, config=slow_cfg, cost_model=quiet_cost())
        states = {n["state"] for n in rec.shg_nodes}
        assert states & {"never-run", "unknown"}
