"""Tests for count metrics and the extended hypothesis tree.

The extended tree exercises the "more specific hypothesis" refinement
axis: ``FrequentSyncOperations`` is tested at a focus only after
``ExcessiveSyncWaitingTime`` tested true there.
"""

import pytest

from repro.apps.synthetic import make_io_app, make_pingpong
from repro.core import SearchConfig, extended_tree, run_diagnosis
from repro.metrics import CostModel, InstrumentationManager
from repro.resources import ResourceSpace, whole_program
from repro.simulator import Compute, Engine, LatencyModel, Machine, Recv, Send

SYNC = "ExcessiveSyncWaitingTime"
FREQ = "FrequentSyncOperations"
IO = "ExcessiveIOBlockingTime"
IOFREQ = "FrequentIOOperations"

FAST = SearchConfig(
    min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0,
    noise_band=0.0,
)
LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)


class TestCountMetricAccumulation:
    def test_sync_ops_counted(self):
        eng = Engine(Machine.named("n", 2), latency=LAT)
        space = ResourceSpace()
        space.add("/Code/m.c/f")
        space.add("/Process/a")
        space.add("/Process/b")
        space.add("/Machine/n0")
        space.add("/Machine/n1")
        space.add("/SyncObject/Message/t/0")
        mgr = InstrumentationManager(
            eng, space, cost_model=CostModel(perturb_per_unit=0.0),
            cost_limit=10.0, insertion_latency=0.0,
        )

        def p0(proc):
            with proc.function("m.c", "f"):
                for _ in range(5):
                    yield Compute(1.0)
                    yield Send("b", "t/0", 0)

        def p1(proc):
            with proc.function("m.c", "f"):
                for _ in range(5):
                    yield Recv("a", "t/0")

        eng.add_process("a", "n0", p0)
        eng.add_process("b", "n1", p1)
        handle = mgr.request("sync_op_count", whole_program(space))
        eng.run()
        value, elapsed = mgr.read(handle)
        # five blocking receives waited (each produced one sync segment)
        assert value == pytest.approx(5.0)
        assert elapsed == pytest.approx(5.0)

    def test_rate_normalisation(self):
        # 0.5 waits per second per process in an io app: 40 ops / 40s / 1 proc
        app = make_io_app(iterations=40, compute=0.5, io=0.5)
        eng = app.make_engine()
        space = app.make_space()
        mgr = InstrumentationManager(
            eng, space, cost_model=CostModel(perturb_per_unit=0.0),
            cost_limit=10.0, insertion_latency=0.0,
        )
        handle = mgr.request("io_op_count", whole_program(space))
        eng.run()
        rate, _ = mgr.normalized_read(handle)
        assert rate == pytest.approx(1.0, rel=0.05)  # one io op per 1s cycle


class TestExtendedTreeSearch:
    def test_frequent_sync_refines_sync(self):
        # many short waits: 0.25s wait each 0.5s cycle -> rate 2/s > 1.5
        app = make_pingpong(iterations=200, slow=0.5, fast=0.25)
        rec = run_diagnosis(
            app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0),
            hypotheses=extended_tree(),
        )
        trues = dict.fromkeys(rec.true_pairs())
        wp = str(whole_program())
        assert (SYNC, wp) in trues
        assert (FREQ, wp) in trues

    def test_infrequent_sync_not_flagged(self):
        # one long wait per 10s cycle: rate 0.1/s < 1.5 but wait frac > 0.2
        app = make_pingpong(iterations=20, slow=10.0, fast=2.0)
        rec = run_diagnosis(
            app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0),
            hypotheses=extended_tree(),
        )
        trues = dict.fromkeys(rec.true_pairs())
        wp = str(whole_program())
        assert (SYNC, wp) in trues
        assert (FREQ, wp) not in trues

    def test_child_hypothesis_only_tested_under_true_parent(self):
        app = make_io_app(iterations=40, compute=0.8, io=0.2)  # io frac 0.2 > 0.15
        rec = run_diagnosis(
            app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0),
            hypotheses=extended_tree(),
        )
        tested = {
            (n["hypothesis"], n["focus"])
            for n in rec.shg_nodes if n.get("t_requested") is not None
        }
        # FrequentSyncOperations never tested: its parent (sync) is false
        assert not any(h == FREQ for h, _ in tested)
        # FrequentIOOperations tested where IO was true
        assert any(h == IOFREQ for h, _ in tested)

    def test_extended_tree_structure(self):
        tree = extended_tree(sync_ops_per_second=3.0)
        assert tree.get(FREQ).default_threshold == 3.0
        assert FREQ in tree.get(SYNC).children
        assert tree.get(FREQ).sync_related
