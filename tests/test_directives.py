"""Tests for directive types, matching semantics, and the text format."""

import pytest

from repro.core.directives import (
    ANY_HYPOTHESIS,
    DirectiveError,
    DirectiveSet,
    MapDirective,
    PairPruneDirective,
    PriorityDirective,
    PruneDirective,
    ThresholdDirective,
)
from repro.core.shg import Priority
from repro.resources import parse_focus, whole_program

SYNC = "ExcessiveSyncWaitingTime"
CPU = "CPUbound"


def focus(**sels):
    f = whole_program()
    for h, p in sels.items():
        f = f.with_selection(h, p)
    return f


class TestPruneMatching:
    def test_prunes_subtree(self):
        p = PruneDirective(ANY_HYPOTHESIS, "/Code/vect.c")
        assert p.matches(SYNC, focus(Code="/Code/vect.c"))
        assert p.matches(SYNC, focus(Code="/Code/vect.c/print"))
        assert not p.matches(SYNC, focus(Code="/Code/main.c"))

    def test_hypothesis_filter(self):
        p = PruneDirective(CPU, "/SyncObject")
        assert p.matches(CPU, focus(SyncObject="/SyncObject/Message"))
        assert not p.matches(SYNC, focus(SyncObject="/SyncObject/Message"))

    def test_root_prune_spares_root_selection(self):
        # Pruning /Machine means "never refine into Machine", but the
        # unconstrained whole-program focus must survive.
        p = PruneDirective(ANY_HYPOTHESIS, "/Machine")
        assert not p.matches(SYNC, whole_program())
        assert p.matches(SYNC, focus(Machine="/Machine/n0"))

    def test_missing_hierarchy_never_matches(self):
        from repro.resources import Focus

        p = PruneDirective(ANY_HYPOTHESIS, "/Machine")
        assert not p.matches(SYNC, Focus({"Code": "/Code/a.c"}))

    def test_invalid_resource(self):
        with pytest.raises(Exception):
            PruneDirective(ANY_HYPOTHESIS, "no-slash")


class TestPairPrune:
    def test_exact_match_only(self):
        pp = PairPruneDirective(SYNC, focus(Code="/Code/a.c"))
        assert pp.matches(SYNC, focus(Code="/Code/a.c"))
        assert not pp.matches(SYNC, focus(Code="/Code/a.c/f"))
        assert not pp.matches(CPU, focus(Code="/Code/a.c"))


class TestDirectiveSet:
    def make(self):
        return DirectiveSet(
            prunes=[PruneDirective(CPU, "/SyncObject")],
            pair_prunes=[PairPruneDirective(SYNC, focus(Code="/Code/dead.c"))],
            priorities=[
                PriorityDirective(SYNC, focus(Code="/Code/hot.c"), Priority.HIGH),
                PriorityDirective(SYNC, focus(Code="/Code/cold.c"), Priority.LOW),
            ],
            thresholds=[ThresholdDirective(SYNC, 0.12)],
            maps=[MapDirective("/Code/oned.f", "/Code/onednb.f")],
        )

    def test_is_pruned(self):
        ds = self.make()
        assert ds.is_pruned(CPU, focus(SyncObject="/SyncObject/Message"))
        assert ds.is_pruned(SYNC, focus(Code="/Code/dead.c"))
        assert not ds.is_pruned(SYNC, focus(Code="/Code/hot.c"))

    def test_priority_of(self):
        ds = self.make()
        assert ds.priority_of(SYNC, focus(Code="/Code/hot.c")) is Priority.HIGH
        assert ds.priority_of(SYNC, focus(Code="/Code/cold.c")) is Priority.LOW
        assert ds.priority_of(SYNC, focus(Code="/Code/other.c")) is Priority.MEDIUM

    def test_high_priority_pairs(self):
        ds = self.make()
        highs = ds.high_priority_pairs()
        assert len(highs) == 1 and highs[0].level is Priority.HIGH

    def test_threshold_of(self):
        ds = self.make()
        assert ds.threshold_of(SYNC) == pytest.approx(0.12)
        assert ds.threshold_of(CPU) is None

    def test_len_and_empty(self):
        assert DirectiveSet().is_empty()
        assert len(self.make()) == 6

    def test_merged_with(self):
        ds = self.make().merged_with(DirectiveSet(thresholds=[ThresholdDirective(CPU, 0.8)]))
        assert ds.threshold_of(CPU) == pytest.approx(0.8)
        assert ds.threshold_of(SYNC) == pytest.approx(0.12)

    def test_without_pair_prunes(self):
        ds = self.make().without_pair_prunes()
        assert not ds.pair_prunes
        assert ds.prunes and ds.priorities and ds.thresholds

    def test_only_projection(self):
        ds = self.make().only("priorities")
        assert ds.priorities and not ds.prunes and not ds.thresholds

    def test_only_rejects_unknown_kind(self):
        with pytest.raises(DirectiveError):
            self.make().only("bogus")


class TestTextFormat:
    def test_roundtrip(self):
        ds = DirectiveSet(
            prunes=[PruneDirective("*", "/Code/vect.c/vect::print")],
            pair_prunes=[PairPruneDirective(SYNC, focus(Code="/Code/a.c"))],
            priorities=[PriorityDirective(SYNC, focus(Process="/Process/p:1"), Priority.HIGH)],
            thresholds=[ThresholdDirective(SYNC, 0.12)],
            maps=[MapDirective("/Code/sweep.f/sweep1d", "/Code/nbsweep.f/nbsweep")],
        )
        clone = DirectiveSet.from_text(ds.to_text())
        assert clone.to_text() == ds.to_text()
        assert clone.priority_of(SYNC, focus(Process="/Process/p:1")) is Priority.HIGH
        assert clone.maps[0].new == "/Code/nbsweep.f/nbsweep"

    def test_comments_and_blanks_ignored(self):
        text = "# a comment\n\nthreshold ExcessiveSyncWaitingTime 0.2\n"
        ds = DirectiveSet.from_text(text)
        assert ds.threshold_of(SYNC) == pytest.approx(0.2)

    def test_unknown_kind(self):
        with pytest.raises(DirectiveError):
            DirectiveSet.from_text("frobnicate /Code")

    def test_malformed_threshold(self):
        with pytest.raises(DirectiveError):
            DirectiveSet.from_text("threshold Sync notanumber")

    def test_malformed_line(self):
        with pytest.raises(DirectiveError):
            DirectiveSet.from_text("prune")

    def test_empty_text(self):
        assert DirectiveSet.from_text("").is_empty()

    def test_priority_levels_parse(self):
        text = (
            f"priority high {SYNC} < /Code/a.c, /Machine, /Process, /SyncObject >\n"
            f"priority low {SYNC} < /Code/b.c, /Machine, /Process, /SyncObject >\n"
            f"priority medium {SYNC} < /Code/c.c, /Machine, /Process, /SyncObject >\n"
        )
        ds = DirectiveSet.from_text(text)
        assert len(ds.priorities) == 3
