"""Tests for the Prometheus naming lint (satellite fix).

The ``repro report --metrics prom`` export and the new ``repro_server_*``
series go through :func:`metrics_to_prometheus`; the lint guarantees a
malformed metric or label name fails loudly at export time instead of
being silently dropped by the scrape.
"""

import pytest

from repro.obs import lint_prometheus_names, metrics_to_prometheus, run_metrics


def _metrics(**extra):
    out = {"engine_events": 10, "peak_cost": 1.5}
    out.update(extra)
    return out


class TestLint:
    def test_clean_names_pass(self):
        assert lint_prometheus_names(_metrics(), prefix="repro_run") == []

    def test_run_metrics_schema_is_clean(self):
        metrics = run_metrics(
            engine_events=1, wall_seconds=1.0, virtual_seconds=1.0,
            peak_cost=0.0, mean_cost=0.0, pairs_instrumented=0,
            pairs_concluded=0, pairs_pruned=0, pairs_unknown=0,
            instr_requests=0, instr_deletes=0, instr_decimates=0,
            time_to_first_true=None, time_to_last_true=None,
        )
        assert lint_prometheus_names(metrics, prefix="repro_run") == []

    def test_bad_metric_name(self):
        problems = lint_prometheus_names({"latency-p99": 1.0}, prefix="repro")
        assert problems and "repro_latency-p99" in problems[0]

    def test_bad_prefix(self):
        problems = lint_prometheus_names(_metrics(), prefix="9repro")
        assert len(problems) == len(_metrics())

    def test_bad_label_name(self):
        problems = lint_prometheus_names(
            _metrics(), prefix="repro", labels={"app-name": "x"}
        )
        assert problems and "app-name" in problems[0]

    def test_reserved_label_name(self):
        problems = lint_prometheus_names(
            _metrics(), prefix="repro", labels={"__internal": "x"}
        )
        assert problems and "reserved" in problems[0]

    def test_colon_allowed_in_metric_not_label(self):
        assert lint_prometheus_names({"a:b": 1}, prefix="repro") == []
        assert lint_prometheus_names({"ok": 1}, prefix="repro",
                                     labels={"a:b": "x"}) != []


class TestExportValidation:
    def test_render_rejects_malformed_metric(self):
        with pytest.raises(ValueError, match="malformed"):
            metrics_to_prometheus({"latency-p99": 1.0}, prefix="repro")

    def test_render_rejects_malformed_label(self):
        with pytest.raises(ValueError, match="label"):
            metrics_to_prometheus(_metrics(), labels={"bad-label": "x"})

    def test_label_values_need_no_lint(self):
        # Any UTF-8 label *value* is legal once escaped.
        text = metrics_to_prometheus(
            _metrics(), labels={"run_id": 'weird "value"\nwith newline'}
        )
        assert '\\"value\\"' in text
        assert "\\n" in text

    def test_server_series_render(self):
        # The shape DiagnosisService.server_metrics() exports.
        text = metrics_to_prometheus(
            {"sessions_completed": 3, "pool_store_hits": 7},
            prefix="repro_server",
        )
        assert "# TYPE repro_server_sessions_completed gauge" in text
        assert "repro_server_pool_store_hits 7" in text
