"""Tests for the diagnosis-session facade."""

import pytest

from repro.apps.synthetic import make_pingpong
from repro.core import (
    DiagnosisSession,
    DirectiveSet,
    MapDirective,
    PriorityDirective,
    SearchConfig,
    run_diagnosis,
)
from repro.core.shg import Priority
from repro.metrics import CostModel
from repro.resources import whole_program

SYNC = "ExcessiveSyncWaitingTime"
FAST = SearchConfig(min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0)


def quiet():
    return CostModel(perturb_per_unit=0.0)


class TestRunDiagnosis:
    def test_record_fields_populated(self):
        rec = run_diagnosis(make_pingpong(iterations=50), config=FAST, cost_model=quiet())
        assert rec.app_name == "pingpong"
        assert rec.n_processes == 2
        assert rec.placement == {"pp:1": "n0", "pp:2": "n1"}
        assert rec.finish_time > 0
        assert rec.pairs_tested > 0
        assert rec.peak_cost > 0
        assert set(rec.hierarchies) == {"Code", "Machine", "Process", "SyncObject"}
        assert rec.profile["totals"]["compute"] > 0
        assert rec.thresholds[SYNC] == pytest.approx(0.20)

    def test_run_id_defaults_unique(self):
        a = run_diagnosis(make_pingpong(iterations=30), config=FAST, cost_model=quiet())
        b = run_diagnosis(make_pingpong(iterations=30), config=FAST, cost_model=quiet())
        assert a.run_id != b.run_id

    def test_explicit_run_id(self):
        rec = run_diagnosis(
            make_pingpong(iterations=30), config=FAST, cost_model=quiet(), run_id="myrun"
        )
        assert rec.run_id == "myrun"

    def test_search_done_recorded(self):
        rec = run_diagnosis(make_pingpong(iterations=80), config=FAST, cost_model=quiet())
        assert rec.search_done_time is not None
        assert rec.search_done_time <= rec.finish_time


class TestMappingIntegration:
    def test_directives_mapped_before_search(self):
        # directive refers to old names; a map directive rewrites them
        old_focus = whole_program().with_selection("Code", "/Code/old.c/work")
        ds = DirectiveSet(
            priorities=[PriorityDirective(SYNC, old_focus, Priority.HIGH)],
            maps=[MapDirective("/Code/old.c", "/Code/pp.c")],
        )
        rec = run_diagnosis(
            make_pingpong(iterations=60), directives=ds, config=FAST, cost_model=quiet()
        )
        mapped = "< /Code/pp.c/work, /Machine, /Process, /SyncObject >"
        node = [n for n in rec.shg_nodes if n["focus"] == mapped and n["hypothesis"] == SYNC]
        assert node and node[0]["persistent"]

    def test_unknown_directives_dropped_not_fatal(self):
        ghost = whole_program().with_selection("Code", "/Code/ghost.c")
        ds = DirectiveSet(priorities=[PriorityDirective(SYNC, ghost, Priority.HIGH)])
        rec = run_diagnosis(
            make_pingpong(iterations=40), directives=ds, config=FAST, cost_model=quiet()
        )
        assert all("/Code/ghost.c" not in n["focus"] for n in rec.shg_nodes)

    def test_mapping_can_be_disabled(self):
        session = DiagnosisSession(
            app=make_pingpong(iterations=40),
            directives=DirectiveSet(),
            config=FAST,
            cost_model=quiet(),
            apply_resource_mapping=False,
        )
        rec = session.run()
        assert rec.pairs_tested > 0
