"""Thread-safety hammer for the storage caches (satellite fix).

One store, many same-process threads: the parsed-index one-slot cache in
the file backend, the sqlite transaction path, and the shared record LRU
all get hit concurrently.  Before the locks these raced on
``OrderedDict`` mutation (``move_to_end``/``popitem`` mid-iteration) and
on the segment cache's read-modify-write; the hammer reproduces that
shape and must stay green.
"""

import threading

import pytest

from repro import diagnose
from repro.apps.synthetic import make_pingpong
from repro.storage import ExperimentStore

FAST = dict(min_interval=5.0, check_period=0.5, insertion_latency=0.2,
            cost_limit=50.0)

THREADS = 8
ROUNDS = 30


def _seed_record():
    return diagnose(make_pingpong(iterations=40), run_id="seed",
                    pool=None, **FAST)


def _replicas(record, n):
    from repro.storage.records import RunRecord

    out = []
    for i in range(n):
        payload = record.to_dict()
        payload["run_id"] = f"run-{i:03d}"
        out.append(RunRecord.from_dict(payload))
    return out


def _hammer(store, run_ids, errors):
    def reader(seed):
        try:
            for i in range(ROUNDS):
                run_id = run_ids[(seed + i) % len(run_ids)]
                record = store.load(run_id)
                assert record.run_id == run_id
                store.summaries(run_ids=[run_id])
                store.list()
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)


@pytest.mark.parametrize("backend", ["file", "sqlite"])
def test_many_reader_threads_one_store(tmp_path, backend):
    record = _seed_record()
    replicas = _replicas(record, 12)
    store = ExperimentStore(tmp_path / "runs", backend=backend,
                            cache_size=4)  # small LRU: constant eviction
    for r in replicas:
        store.save(r)
    errors = []
    _hammer(store, [r.run_id for r in replicas], errors)
    assert errors == []
    # The LRU stayed bounded and coherent under the stampede.
    info = store.cache_info()
    assert info["size"] <= 4
    assert info["hits"] + info["misses"] >= THREADS * ROUNDS


@pytest.mark.parametrize("backend", ["file", "sqlite"])
def test_readers_race_writers(tmp_path, backend):
    record = _seed_record()
    replicas = _replicas(record, 8)
    store = ExperimentStore(tmp_path / "runs", backend=backend,
                            cache_size=4)
    for r in replicas:
        store.save(r)
    errors = []
    stop = threading.Event()

    def writer():
        try:
            i = 0
            while not stop.is_set():
                store.save(replicas[i % len(replicas)], overwrite=True)
                i += 1
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    w = threading.Thread(target=writer)
    w.start()
    try:
        _hammer(store, [r.run_id for r in replicas], errors)
    finally:
        stop.set()
        w.join(timeout=120)
    assert errors == []


def test_close_is_idempotent(tmp_path):
    record = _seed_record()
    store = ExperimentStore(tmp_path / "runs")
    store.save(record)
    store.close()
    store.close()  # pooled stores may be closed twice


def test_sqlite_close_releases_connection(tmp_path):
    record = _seed_record()
    store = ExperimentStore(tmp_path / "runs", backend="sqlite")
    store.save(record)
    store.close()
    # A fresh open still reads everything back.
    again = ExperimentStore(tmp_path / "runs", backend="sqlite")
    assert again.load("seed").run_id == "seed"
    again.close()
