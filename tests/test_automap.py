"""Tests for automatic resource mapping."""

import pytest

from repro.apps.poisson import PoissonConfig, build_poisson
from repro.core import MapDirective, SearchConfig, run_diagnosis
from repro.core.automap import suggest_mappings, suggest_mappings_for_records

SC = SearchConfig(min_interval=15.0, check_period=1.0, insertion_latency=1.0, cost_limit=8.0)
CFG = PoissonConfig(iterations=150)


@pytest.fixture(scope="module")
def records_ab():
    a = run_diagnosis(build_poisson("A", CFG), config=SC)
    b = run_diagnosis(build_poisson("B", CFG), config=SC)
    return a, b


class TestStructuralSuggestions:
    def test_machine_positional(self, records_ab):
        a, b = records_ab
        maps = {(s.directive.old, s.directive.new)
                for s in suggest_mappings_for_records(a, b)}
        assert ("/Machine/node00", "/Machine/node04") in maps
        assert ("/Machine/node03", "/Machine/node07") in maps

    def test_figure3_code_maps_recovered(self, records_ab):
        """The automatic matcher reproduces the paper's hand-written
        Figure 3 mapping list for versions A -> B."""
        a, b = records_ab
        maps = {(s.directive.old, s.directive.new)
                for s in suggest_mappings_for_records(a, b)}
        expected = {
            ("/Code/oned.f", "/Code/onednb.f"),
            ("/Code/sweep.f", "/Code/nbsweep.f"),
            ("/Code/sweep.f/sweep1d", "/Code/nbsweep.f/nbsweep"),
            ("/Code/exchng1.f", "/Code/nbexchng.f"),
            ("/Code/exchng1.f/exchng1", "/Code/nbexchng.f/nbexchng1"),
        }
        assert expected <= maps

    def test_no_spurious_maps_for_shared_modules(self, records_ab):
        a, b = records_ab
        suggestions = suggest_mappings_for_records(a, b)
        olds = {s.directive.old for s in suggestions}
        # shared modules need no mapping
        assert "/Code/diff.f" not in olds
        assert "/Code/timing.f" not in olds

    def test_scores_in_range(self, records_ab):
        a, b = records_ab
        for s in suggest_mappings_for_records(a, b):
            assert 0.0 < s.score <= 1.0
            assert s.reason

    def test_fixed_mappings_respected(self, records_ab):
        a, b = records_ab
        fixed = [MapDirective("/Code/oned.f", "/Code/nbsweep.f")]  # user override
        suggestions = suggest_mappings_for_records(a, b)
        with_fixed = suggest_mappings(
            a.hierarchies, b.hierarchies,
            old_profile=a.flat_profile(), new_profile=b.flat_profile(),
            fixed=fixed,
        )
        olds = {s.directive.old for s in with_fixed}
        assert "/Code/oned.f" not in olds  # never overridden
        assert any(s.directive.old == "/Code/oned.f" for s in suggestions)


class TestNameOnlyMatching:
    def test_works_without_profiles(self):
        old = {"Code": ["/Code", "/Code/solver.f", "/Code/solver.f/run"],
               "Machine": ["/Machine", "/Machine/n0"],
               "Process": ["/Process", "/Process/p:1"],
               "SyncObject": ["/SyncObject"]}
        new = {"Code": ["/Code", "/Code/solver2.f", "/Code/solver2.f/run"],
               "Machine": ["/Machine", "/Machine/n9"],
               "Process": ["/Process", "/Process/p:1"],
               "SyncObject": ["/SyncObject"]}
        maps = {(s.directive.old, s.directive.new) for s in suggest_mappings(old, new)}
        assert ("/Code/solver.f", "/Code/solver2.f") in maps
        assert ("/Machine/n0", "/Machine/n9") in maps

    def test_below_min_score_not_suggested(self):
        old = {"Code": ["/Code", "/Code/alpha.c"], "Machine": ["/Machine"],
               "Process": ["/Process"], "SyncObject": ["/SyncObject"]}
        new = {"Code": ["/Code", "/Code/zzz.f"], "Machine": ["/Machine"],
               "Process": ["/Process"], "SyncObject": ["/SyncObject"]}
        suggestions = suggest_mappings(old, new, min_score=0.5)
        assert not any(s.directive.old == "/Code/alpha.c" for s in suggestions)

    def test_identical_spaces_produce_nothing(self):
        space = {"Code": ["/Code", "/Code/a.c"], "Machine": ["/Machine", "/Machine/n0"],
                 "Process": ["/Process", "/Process/p"], "SyncObject": ["/SyncObject"]}
        assert suggest_mappings(space, space) == []
