"""Determinism guarantees: identical configurations give identical records.

The reproduction's experiments depend on exact repeatability — the same
workload and search configuration must produce byte-identical run records
(modulo the run id), or time-to-find comparisons would be noise.
"""

import json

import pytest

from repro.apps.ocean import OceanConfig, build_ocean
from repro.apps.poisson import PoissonConfig, build_poisson
from repro.core import SearchConfig, extract_directives, run_diagnosis
from repro.obs import deterministic_metrics

SC = SearchConfig(min_interval=15.0, check_period=1.0, insertion_latency=1.0, cost_limit=8.0)


def normalized(record):
    data = record.to_dict()
    data["run_id"] = "X"
    # Wall-clock metrics (events/sec, ...) legitimately differ between
    # byte-identical runs; every virtual-domain metric must reproduce.
    data["metrics"] = deterministic_metrics(data["metrics"])
    return json.dumps(data, sort_keys=True)


class TestRunDeterminism:
    def test_identical_poisson_runs(self):
        a = run_diagnosis(build_poisson("C", PoissonConfig(iterations=120)), config=SC)
        b = run_diagnosis(build_poisson("C", PoissonConfig(iterations=120)), config=SC)
        assert normalized(a) == normalized(b)

    def test_identical_ocean_runs(self):
        a = run_diagnosis(build_ocean(OceanConfig(iterations=100)), config=SC)
        b = run_diagnosis(build_ocean(OceanConfig(iterations=100)), config=SC)
        assert normalized(a) == normalized(b)

    def test_different_seeds_differ(self):
        a = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=120, seed=1)), config=SC
        )
        b = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=120, seed=2)), config=SC
        )
        assert normalized(a) != normalized(b)

    def test_directed_runs_deterministic(self):
        base = run_diagnosis(build_poisson("C", PoissonConfig(iterations=120)), config=SC)
        ds = extract_directives(base)
        a = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=120)), directives=ds, config=SC
        )
        b = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=120)), directives=ds, config=SC
        )
        assert normalized(a) == normalized(b)

    def test_directive_text_deterministic(self):
        base1 = run_diagnosis(build_poisson("A", PoissonConfig(iterations=100)), config=SC)
        base2 = run_diagnosis(build_poisson("A", PoissonConfig(iterations=100)), config=SC)
        assert extract_directives(base1).to_text() == extract_directives(base2).to_text()
