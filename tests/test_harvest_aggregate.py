"""The harvest-aggregate fast path: monoid laws, byte-identity with the
summary-scan route, cross-backend equivalence, the pool's O(Δ) fold, and
the degrade-to-rescan guarantees under crashes and missing aggregates.

The contract under test everywhere: an aggregate-served harvest may be
*absent* (forcing the full summary rescan) but never *wrong* — every
fast answer is compared against the scan route's text."""

import json
import random

import pytest

from repro.core.combination import union_directives
from repro.core.extraction import (
    HarvestAggregate,
    extract_directives_from_summaries,
)
from repro.facade import harvest
from repro.faults import IOFault, IOFaultPlan, SimulatedCrash
from repro.faults import io as io_faults
from repro.server.pool import StorePool
from repro.storage import ExperimentStore, RunRecord

BACKENDS = ("file", "file-legacy", "sqlite")

HYPS = ("CPUbound", "ExcessiveSyncWaitingTime", "ExcessiveIOBlockingTime")

OPTION_COMBOS = (
    {},
    {"include_thresholds": True},
    {"include_pair_prunes": False, "include_priorities": False},
    {"include_thresholds": True, "include_general_prunes": False,
     "min_exec_fraction": 0.05},
)


def _focus(name: str) -> str:
    return f"< {name}, /Machine, /Process, /SyncObject >"


def random_summary(rng: random.Random) -> dict:
    """One synthetic index summary with every key the harvest reads,
    including the awkward cases: empty leaf lists, fractions straddling
    the default ``min_exec_fraction``, near-duplicate hypothesis values."""
    leaves = [f"/Code/mod{j % 3}.c/fn{j:02d}"
              for j in range(rng.randint(0, 8))]
    pairs = lambda: [  # noqa: E731 - local shorthand
        [rng.choice(HYPS), _focus(rng.choice(leaves))]
        for _ in range(rng.randint(0, 3))
    ] if leaves else []
    fractions = {
        name: rng.choice(
            [0.0, 0.00012, 0.0049, 0.005, 0.3, rng.random()])
        for name in leaves if rng.random() < 0.8
    }
    hyp_values = {
        h: [round(rng.uniform(0.0, 1.0), rng.choice([2, 4, 6]))
            for _ in range(rng.randint(1, 4))]
        for h in HYPS if rng.random() < 0.7
    }
    return {
        "version": 1,
        "machine_nodes": rng.choice([2, 4, 8]),
        "n_processes": rng.choice([2, 4, 8]),
        "true_pairs": pairs(),
        "false_pairs": pairs(),
        "code_leaves": leaves,
        "code_exec_fractions": fractions,
        "hyp_values": hyp_values,
    }


def make_run(i: int, app: str = "aggtest") -> RunRecord:
    """A small diagnosed run whose summary exercises every harvest
    input: true/false pairs, hot + tiny functions, hypothesis values."""
    funcs = [f"/Code/m{j % 2}.c/fn{j:02d}" for j in range(6)]
    by_code = {
        name: {"compute": (20.0 + i if j < 2 else 0.001 + 0.0001 * j)}
        for j, name in enumerate(funcs)
    }
    nodes = []
    for j, state in enumerate(("true", "true", "false", "false")):
        nodes.append({
            "id": j, "hypothesis": HYPS[j % 2],
            "focus": _focus(funcs[j]),
            "state": state, "priority": "medium", "persistent": False,
            "value": 0.2 + 0.01 * j + 0.001 * (i % 3),
            "t_requested": 0.0, "t_concluded": 5.0 + j,
            "quality": None, "parents": [], "children": [],
        })
    return RunRecord(
        run_id=f"run-{i:03d}",
        app_name=app,
        version="1",
        n_processes=4,
        nodes=["n0", "n1"],
        placement={"p0": "n0", "p1": "n1"},
        hierarchies={
            "Code": ["/Code", "/Code/m0.c", "/Code/m1.c"] + funcs,
            "Process": ["/Process", "/Process/p0", "/Process/p1"],
            "Machine": ["/Machine", "/Machine/n0", "/Machine/n1"],
            "SyncObject": ["/SyncObject"],
        },
        shg_nodes=nodes,
        profile={
            "by_code": by_code,
            "by_process": {"/Process/p0": {"sync": 0.5}},
            "by_node": {"/Machine/n0": {"sync": 0.2}},
            "by_tag": {},
            "totals": {"compute": sum(
                v for e in by_code.values() for v in e.values())},
            "elapsed": 50.0,
        },
        finish_time=100.0 + i,
        search_done_time=40.0,
        pairs_tested=4,
        total_requests=4,
        peak_cost=1.0,
    )


def _store(root, backend="file", n=3, app="aggtest") -> ExperimentStore:
    store = ExperimentStore(root, backend=backend, auto_compact=0)
    for i in range(n):
        store.save(make_run(i, app=app))
    return store


def _scan_text(store: ExperimentStore, **options) -> str:
    metas = store.summaries()
    return extract_directives_from_summaries(
        [meta["summary"] for meta in metas.values()], **options
    ).to_text()


# ---------------------------------------------------------------------------
# the monoid
# ---------------------------------------------------------------------------
def test_merge_equals_concat_property():
    """merge(of(A), of(B)) must equal of(A + B) — and finalize to the
    same directives — for seeded random summary sequences split at
    every boundary."""
    rng = random.Random(0xA66)
    for trial in range(60):
        summaries = [random_summary(rng) for _ in range(rng.randint(0, 7))]
        whole = HarvestAggregate.of_summaries(summaries)
        for cut in range(len(summaries) + 1):
            left = HarvestAggregate.of_summaries(summaries[:cut])
            right = HarvestAggregate.of_summaries(summaries[cut:])
            merged = left.merge(right)
            assert merged == whole, f"trial={trial} cut={cut}"
            for options in OPTION_COMBOS:
                assert merged.finalize(**options).to_text() == \
                    whole.finalize(**options).to_text(), \
                    f"trial={trial} cut={cut} options={options}"


def test_merge_associative_and_identity():
    rng = random.Random(0xB17)
    empty = HarvestAggregate()
    for trial in range(40):
        a, b, c = (
            HarvestAggregate.of_summaries(
                random_summary(rng) for _ in range(rng.randint(0, 4)))
            for _ in range(3)
        )
        assert a.merge(b).merge(c) == a.merge(b.merge(c)), f"trial={trial}"
        assert empty.merge(a) == a and a.merge(empty) == a, f"trial={trial}"
    assert empty.merge(empty) == HarvestAggregate()


def test_finalize_matches_scan_route_property():
    rng = random.Random(0xC4E)
    for trial in range(40):
        summaries = [random_summary(rng) for _ in range(rng.randint(0, 6))]
        agg = HarvestAggregate.of_summaries(summaries)
        for options in OPTION_COMBOS:
            expected = extract_directives_from_summaries(
                summaries, **options).to_text()
            assert agg.finalize(**options).to_text() == expected, \
                f"trial={trial} options={options}"


def test_dict_roundtrip_and_version_guard():
    rng = random.Random(0xD0C)
    agg = HarvestAggregate.of_summaries(random_summary(rng) for _ in range(5))
    data = json.loads(json.dumps(agg.to_dict()))  # must survive JSON
    assert HarvestAggregate.from_dict(data) == agg
    data["version"] = 99
    with pytest.raises(ValueError):
        HarvestAggregate.from_dict(data)


# ---------------------------------------------------------------------------
# cross-backend equivalence
# ---------------------------------------------------------------------------
def test_cross_backend_aggregate_equivalence(tmp_path):
    """The aggregate-served harvest must match the summary-scan route on
    every backend, and all backends must agree with each other."""
    texts = {}
    for backend in BACKENDS:
        store = _store(tmp_path / backend, backend=backend, n=4)
        if backend == "file":
            store.compact()  # persists the aggregate sidecar
        fast = store.harvest_evidence().finalize(
            include_thresholds=True).to_text()
        assert fast == _scan_text(store, include_thresholds=True), backend
        texts[backend] = fast
        info = store.info()
        if backend == "file-legacy":
            assert info.aggregated_runs == 0, "legacy keeps no aggregate"
        else:
            # file: compaction persisted it; sqlite: the first harvest
            # self-healed the aggregate table
            assert info.aggregated_runs == info.runs, backend
    assert len(set(texts.values())) == 1, sorted(texts)


def test_app_scoped_aggregate_matches_scan(tmp_path):
    store = ExperimentStore(tmp_path / "mixed", auto_compact=0)
    for i in range(3):
        store.save(make_run(i, app="alpha"))
    for i in range(3, 5):
        store.save(make_run(i, app="beta"))
    store.compact()
    for app in ("alpha", "beta", "nosuch"):
        metas = store.summaries(app_name=app)
        expected = extract_directives_from_summaries(
            [m["summary"] for m in metas.values()]).to_text()
        assert store.harvest_evidence(app).finalize().to_text() == expected, app


# ---------------------------------------------------------------------------
# federated harvest: aggregated + non-aggregated members
# ---------------------------------------------------------------------------
def test_federated_mixed_members(tmp_path):
    """A federated harvest over one aggregate-backed member and one
    scan-only member keeps per-member union semantics."""
    a = _store(tmp_path / "a", backend="file", n=3)
    a.compact()
    assert a.info().aggregated_runs == 3
    b = _store(tmp_path / "b", backend="file-legacy", n=2, app="other")
    assert b.info().aggregated_runs == 0
    federated = harvest([a, b], pool=None)
    expected = union_directives(harvest(a, pool=None), harvest(b, pool=None))
    assert federated.to_text() == expected.to_text()
    # member order must not matter
    assert harvest([b, a], pool=None).to_text() == federated.to_text()


# ---------------------------------------------------------------------------
# the pool: O(Δ) re-harvest and the token race
# ---------------------------------------------------------------------------
def test_pool_incremental_fold_after_write(tmp_path):
    store = _store(tmp_path / "incr", n=3)
    pool = StorePool()
    first = pool.harvest(store)
    assert pool.harvest(store) is first  # token unchanged: cache hit
    store.save(make_run(7))
    refolded = pool.harvest(store)
    stats = pool.stats()
    assert stats["harvest_incremental"] == 1, \
        "post-write re-harvest should fold only the delta"
    assert refolded.to_text() == _scan_text(store)
    # a delete breaks the append-only proof: next harvest rescans but
    # still answers correctly
    store.delete("run-001")
    assert pool.harvest(store).to_text() == _scan_text(store)
    assert pool.stats()["harvest_incremental"] == 1


def test_pool_does_not_cache_when_token_races(tmp_path):
    """A write landing mid-extraction must not pin the extracted
    directives to a token they no longer describe."""
    store = _store(tmp_path / "race", n=3)
    pool = StorePool()
    real_token = store.index_token
    calls = {"n": 0}

    def racing_token():
        calls["n"] += 1
        if calls["n"] == 1:
            return ("raced-away", 0)  # the state extraction started from
        return real_token()

    store.index_token = racing_token
    try:
        raced = pool.harvest(store)
    finally:
        store.index_token = real_token
    assert calls["n"] >= 2, "pool must re-read the token after extraction"
    assert raced.to_text() == _scan_text(store)
    assert pool.stats()["harvest_entries"] == 0, \
        "a raced harvest must not be cached"
    again = pool.harvest(store)
    assert again.to_text() == raced.to_text()
    assert pool.stats()["harvest_misses"] == 2
    assert pool.harvest(store) is again
    assert pool.stats()["harvest_hits"] == 1


# ---------------------------------------------------------------------------
# degrade-to-rescan: crashes and missing aggregates are never wrong
# ---------------------------------------------------------------------------
def _reopen(root) -> ExperimentStore:
    return ExperimentStore(root, auto_compact=0, resilience=False,
                           cache_size=0)


@pytest.mark.parametrize("at", [0, 2])
def test_crash_during_seal_degrades_never_wrong(tmp_path, at):
    """Kill the writer at each atomic-rename boundary inside a save's
    index-segment seal (``at`` counts the save's replace calls: 0 = the
    state-file claim, 2 = the segment seal itself; 1 is the record
    payload, excluded by ``path_part``): whatever prefix survived, the
    reopened store's aggregate-served harvest must equal its scan-route
    harvest."""
    seed = 8101 + at
    root = tmp_path / f"seal-{at}"
    store = ExperimentStore(root, auto_compact=0, resilience=False)
    for i in range(2):
        store.save(make_run(i))
    plan = IOFaultPlan(seed=seed, faults=(
        IOFault(op="replace", at=at, kind="crash", times=99,
                path_part="segments"),
    ))
    with io_faults.injected(plan) as injector:
        with pytest.raises(SimulatedCrash):
            store.save(make_run(2))
    assert injector.injected, f"seed={seed}: plan never fired"
    reopened = _reopen(root)
    context = f"seed={seed} at={at}: aggregate route diverged after crash"
    assert reopened.harvest_evidence().finalize().to_text() == \
        _scan_text(reopened), context
    # recovery: rebuild backfills a full aggregate over what survived
    reopened.rebuild_index()
    rebuilt = _reopen(root)
    info = rebuilt.info()
    assert info.aggregated_runs == info.runs, context
    assert rebuilt.harvest_evidence().finalize().to_text() == \
        _scan_text(rebuilt), context


def test_crash_before_sidecar_write_goes_stale_then_rescans(tmp_path):
    """Kill compaction after the base rename but before the aggregate
    sidecar lands: the stale sidecar must be rejected (coverage drops to
    zero), the harvest must rescan to the right answer, and a rebuild
    must restore coverage."""
    seed = 8201
    root = tmp_path / "stale"
    store = ExperimentStore(root, auto_compact=0, resilience=False)
    for i in range(3):
        store.save(make_run(i))
    store.compact()  # a valid sidecar for the current base exists now
    store.save(make_run(3))  # new segment → next compact must refresh it
    plan = IOFaultPlan(seed=seed, faults=(
        IOFault(op="replace", at=0, kind="crash", times=99,
                path_part="index.aggregate"),
    ))
    with io_faults.injected(plan) as injector:
        with pytest.raises(SimulatedCrash):
            store.compact()
    assert injector.injected, f"seed={seed}: plan never fired"
    reopened = _reopen(root)
    info = reopened.info()
    assert info.runs == 4, f"seed={seed}: compaction lost runs"
    assert info.aggregated_runs == 0, \
        f"seed={seed}: stale sidecar accepted after crash"
    assert reopened.backend.harvest_aggregate() is None
    assert reopened.harvest_evidence().finalize().to_text() == \
        _scan_text(reopened)
    reopened.rebuild_index()
    rebuilt = _reopen(root)
    assert rebuilt.info().aggregated_runs == 4
    assert rebuilt.harvest_evidence().finalize().to_text() == \
        _scan_text(rebuilt)


def test_pre_aggregate_segment_folds_per_op(tmp_path):
    """A sealed segment written without an embedded aggregate (an older
    writer) still harvests exactly: the fast path folds its ops one by
    one instead of bailing out."""
    root = tmp_path / "old-seg"
    store = _store(root, n=3)
    seg_dir = root / "segments"
    seg = sorted(p for p in seg_dir.iterdir() if p.suffix == ".json")[1]
    data = json.loads(seg.read_text())
    assert "aggregate" in data, "new segments should embed an aggregate"
    del data["aggregate"]
    seg.write_text(json.dumps(data))
    reopened = _reopen(root)
    info = reopened.info()
    assert info.aggregated_segments == info.segments - 1
    assert reopened.backend.harvest_aggregate() is not None
    assert reopened.harvest_evidence().finalize().to_text() == \
        _scan_text(reopened)


def test_unparseable_segment_forces_rescan_not_wrong(tmp_path):
    """Garbage where a segment's ops should be degrades the aggregate
    to ``None`` — the harvest rescans (and the scan itself sees the
    merged view the backend serves), never inventing directives."""
    root = tmp_path / "garbage"
    store = _store(root, n=3)
    seg_dir = root / "segments"
    seg = sorted(p for p in seg_dir.iterdir() if p.suffix == ".json")[1]
    data = json.loads(seg.read_text())
    del data["aggregate"]
    for op in data["ops"]:
        op["meta"].pop("summary", None)  # unsummarized put: unprovable
    seg.write_text(json.dumps(data))
    reopened = _reopen(root)
    assert reopened.backend.harvest_aggregate() is None
    assert reopened.harvest_evidence().finalize().to_text() == \
        _scan_text(reopened)
