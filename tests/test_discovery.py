"""Tests for late resource discovery."""

import pytest

from repro.apps.base import Application
from repro.core import DiscoverySink, SearchConfig, run_diagnosis
from repro.core.shg import NodeState
from repro.metrics import CostModel
from repro.resources import ResourceSpace
from repro.simulator import Activity, Compute, Recv, Send, TimeSegment

FAST = SearchConfig(
    min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0,
    noise_band=0.0,
)


def make_two_phase_app(n=80, declare_late_tag=False):
    """A producer/consumer that switches tag mid-run; tag 8/1 is only
    used in the second half and (optionally) not declared upfront."""

    def p0(proc):
        with proc.function("m.c", "f"):
            for i in range(n):
                yield Compute(1.0)
                yield Send("b", "8/0" if i < n // 2 else "8/1", 64)

    def p1(proc):
        with proc.function("m.c", "g"):
            for i in range(n):
                yield Compute(0.3)
                yield Recv("a", "8/0" if i < n // 2 else "8/1")

    tags = ("8/0", "8/1") if declare_late_tag else ("8/0",)
    return Application(
        name="late", version="1", modules={"m.c": ("f", "g")},
        tags=tags, processes=("a", "b"), placement={"a": "n0", "b": "n1"},
        programs={"a": p0, "b": p1},
    )


class TestDiscoverySink:
    def test_registers_unknown_resources(self):
        space = ResourceSpace()
        sink = DiscoverySink(space)
        seg = TimeSegment.make(0, 1.0, Activity.SYNC, "p:9", "nX", "new.c", "fn", tag="4/2")
        sink.record(seg)
        assert "/Code/new.c/fn" in space
        assert "/Process/p:9" in space
        assert "/Machine/nX" in space
        assert "/SyncObject/Message/4/2" in space
        assert len(sink.discovered) == 4

    def test_known_resources_not_duplicated(self):
        space = ResourceSpace()
        space.add("/Code/new.c/fn")
        sink = DiscoverySink(space)
        seg = TimeSegment.make(0, 1.0, Activity.COMPUTE, "p", "n", "new.c", "fn")
        before = space.version
        sink.record(seg)
        sink.record(seg)
        assert "/Code/new.c/fn" not in sink.discovered
        # process/node were new, fn was not
        assert space.version > before

    def test_space_version_counter(self):
        space = ResourceSpace()
        v0 = space.version
        space.add("/Code/a.c")
        assert space.version == v0 + 1
        space.add("/Code/a.c")  # idempotent adds do not bump
        assert space.version == v0 + 1


class TestLateDiscoveryInSearch:
    def test_undeclared_tag_found_with_discovery(self):
        rec = run_diagnosis(
            make_two_phase_app(declare_late_tag=False),
            config=FAST,
            cost_model=CostModel(perturb_per_unit=0.0),
            discover_resources=True,
        )
        assert "/SyncObject/Message/8/1" in rec.hierarchies["SyncObject"]
        assert any("8/1" in f for _, f in rec.true_pairs())

    def test_undeclared_tag_missed_without_discovery(self):
        rec = run_diagnosis(
            make_two_phase_app(declare_late_tag=False),
            config=FAST,
            cost_model=CostModel(perturb_per_unit=0.0),
            discover_resources=False,
        )
        assert not any("8/1" in f for _, f in rec.true_pairs())

    def test_discovery_matches_upfront_declaration(self):
        discovered = run_diagnosis(
            make_two_phase_app(declare_late_tag=False),
            config=FAST, cost_model=CostModel(perturb_per_unit=0.0),
            discover_resources=True,
        )
        declared = run_diagnosis(
            make_two_phase_app(declare_late_tag=True),
            config=FAST, cost_model=CostModel(perturb_per_unit=0.0),
        )
        d_pairs = {p for p in discovered.true_pairs() if "8/1" in p[1]}
        s_pairs = {p for p in declared.true_pairs() if "8/1" in p[1]}
        # discovery reaches the same late-tag conclusions
        assert d_pairs and d_pairs <= s_pairs | d_pairs
        assert len(d_pairs) >= 0.6 * len(s_pairs)
