"""Unit tests for foci: construction, refinement, matching, parsing."""

import pytest

from repro.resources import (
    Focus,
    ResourceNameError,
    ResourceSpace,
    parse_focus,
    whole_program,
)


@pytest.fixture
def space():
    s = ResourceSpace()
    s.add("/Code/a.c/f")
    s.add("/Code/a.c/g")
    s.add("/Code/b.c/h")
    s.add("/Machine/n0")
    s.add("/Machine/n1")
    s.add("/Process/p:1")
    s.add("/Process/p:2")
    s.add("/SyncObject/Message/3/0")
    s.add("/SyncObject/Message/3/1")
    return s


class TestConstruction:
    def test_whole_program_default(self):
        wp = whole_program()
        assert wp.is_whole_program()
        assert wp.depth() == 0

    def test_whole_program_from_space(self, space):
        wp = whole_program(space)
        assert set(wp.hierarchies) == {"Code", "Machine", "Process", "SyncObject"}

    def test_selection_must_match_hierarchy(self):
        with pytest.raises(ResourceNameError):
            Focus({"Code": "/Machine/n0"})

    def test_equality_and_hash(self):
        a = Focus({"Code": "/Code/a.c", "Process": "/Process"})
        b = Focus({"Process": "/Process", "Code": "/Code/a.c"})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = Focus({"Code": "/Code/a.c"})
        b = Focus({"Code": "/Code/b.c"})
        assert a != b

    def test_str_form(self):
        f = Focus({"Code": "/Code/a.c", "Machine": "/Machine"})
        assert str(f) == "< /Code/a.c, /Machine >"

    def test_with_selection(self):
        wp = whole_program()
        f = wp.with_selection("Code", "/Code/a.c")
        assert f.selection("Code") == "/Code/a.c"
        assert wp.selection("Code") == "/Code"  # original unchanged

    def test_with_selection_unknown_hierarchy(self):
        wp = whole_program()
        with pytest.raises(ResourceNameError):
            wp.with_selection("Bogus", "/Bogus/x")

    def test_constrains(self):
        f = Focus({"Code": "/Code/a.c", "Machine": "/Machine"})
        assert f.constrains("Code")
        assert not f.constrains("Machine")

    def test_depth_counts_all_hierarchies(self):
        f = Focus({"Code": "/Code/a.c/f", "Process": "/Process/p:1"})
        assert f.depth() == 3


class TestRefinement:
    def test_children_one_edge_per_hierarchy(self, space):
        wp = whole_program(space)
        kids = wp.children(space)
        # Code: 2 modules, Machine: 2 nodes, Process: 2, SyncObject: 1 (Message)
        assert len(kids) == 7
        assert all(k.depth() == 1 for k in kids)

    def test_refine_single_hierarchy(self, space):
        wp = whole_program(space)
        kids = wp.refine(space, "Code")
        assert {k.selection("Code") for k in kids} == {"/Code/a.c", "/Code/b.c"}

    def test_refine_leaf_no_children(self, space):
        f = whole_program(space).with_selection("Code", "/Code/a.c/f")
        assert f.refine(space, "Code") == []

    def test_refine_unknown_resource(self, space):
        f = whole_program(space).with_selection("Code", "/Code/a.c")
        f2 = f.with_selection("Code", "/Code/zz.c")
        assert f2.refine(space, "Code") == []

    def test_refine_missing_hierarchy(self, space):
        f = Focus({"Code": "/Code"})
        assert f.refine(space, "Machine") == []

    def test_message_tag_chain(self, space):
        wp = whole_program(space)
        msg = wp.with_selection("SyncObject", "/SyncObject/Message")
        kids = msg.refine(space, "SyncObject")
        assert [k.selection("SyncObject") for k in kids] == ["/SyncObject/Message/3"]
        grand = kids[0].refine(space, "SyncObject")
        assert {k.selection("SyncObject") for k in grand} == {
            "/SyncObject/Message/3/0",
            "/SyncObject/Message/3/1",
        }


class TestMatching:
    def test_descendant_or_equal(self):
        parent = Focus({"Code": "/Code/a.c", "Process": "/Process"})
        child = Focus({"Code": "/Code/a.c/f", "Process": "/Process"})
        assert child.is_descendant_or_equal(parent)
        assert parent.is_descendant_or_equal(parent)
        assert not parent.is_descendant_or_equal(child)

    def test_descendant_mismatched_hierarchies(self):
        a = Focus({"Code": "/Code"})
        b = Focus({"Code": "/Code", "Process": "/Process"})
        assert not a.is_descendant_or_equal(b)

    def test_matches_parts_unconstrained(self):
        wp = whole_program()
        assert wp.matches_parts({"Code": ("Code", "a.c", "f")})

    def test_matches_parts_constrained(self):
        f = Focus(
            {"Code": "/Code/a.c", "Machine": "/Machine", "Process": "/Process", "SyncObject": "/SyncObject"}
        )
        assert f.matches_parts({"Code": ("Code", "a.c", "f")})
        assert not f.matches_parts({"Code": ("Code", "b.c", "h")})

    def test_constrained_hierarchy_missing_in_segment(self):
        f = Focus(
            {"Code": "/Code", "Machine": "/Machine", "Process": "/Process",
             "SyncObject": "/SyncObject/Message"}
        )
        # compute segments carry no SyncObject resource
        assert not f.matches_parts({"Code": ("Code", "a.c", "f")})


class TestParse:
    def test_roundtrip(self):
        text = "< /Code/a.c/f, /Machine, /Process/p:1, /SyncObject >"
        assert str(parse_focus(text)) == text

    def test_whitespace_tolerant(self):
        f = parse_focus("</Code/a.c,/Machine>")
        assert f.selection("Code") == "/Code/a.c"

    def test_duplicate_hierarchy(self):
        with pytest.raises(ResourceNameError):
            parse_focus("< /Code/a.c, /Code/b.c >")

    def test_empty(self):
        with pytest.raises(ResourceNameError):
            parse_focus("<  >")
