"""White-box unit tests of the Performance Consultant search internals."""

import pytest

from repro.core import (
    DirectiveSet,
    PriorityDirective,
    SearchConfig,
    ThresholdDirective,
)
from repro.core.search import PerformanceConsultantSearch
from repro.core.shg import NodeState, Priority
from repro.metrics import CostModel, InstrumentationManager
from repro.resources import ResourceSpace, whole_program
from repro.simulator import Compute, Engine, LatencyModel, Machine

SYNC = "ExcessiveSyncWaitingTime"
CPU = "CPUbound"
LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)


def build_search(directives=None, config=None):
    eng = Engine(Machine.named("n", 1), latency=LAT)
    space = ResourceSpace()
    space.add("/Code/a.c/f")
    space.add("/Code/b.c/g")
    space.add("/Process/p:1")
    space.add("/Machine/n0")

    def prog(proc):
        with proc.function("a.c", "f"):
            for _ in range(40):
                yield Compute(1.0)

    eng.add_process("p:1", "n0", prog)
    instr = InstrumentationManager(
        eng, space, cost_model=CostModel(perturb_per_unit=0.0),
        cost_limit=(config or SearchConfig()).cost_limit, insertion_latency=0.2,
    )
    search = PerformanceConsultantSearch(
        eng, instr, space,
        directives=directives,
        config=config or SearchConfig(
            min_interval=5.0, check_period=0.5, insertion_latency=0.2,
            cost_limit=50.0, noise_band=0.0,
        ),
    )
    return eng, search


class TestThresholdPrecedence:
    def test_default(self):
        _, search = build_search()
        assert search.threshold(SYNC) == pytest.approx(0.20)

    def test_config_override(self):
        _, search = build_search(config=SearchConfig(
            min_interval=5.0, threshold_overrides={SYNC: 0.33}))
        assert search.threshold(SYNC) == pytest.approx(0.33)

    def test_directive_beats_config(self):
        ds = DirectiveSet(thresholds=[ThresholdDirective(SYNC, 0.11)])
        _, search = build_search(directives=ds, config=SearchConfig(
            min_interval=5.0, threshold_overrides={SYNC: 0.33}))
        assert search.threshold(SYNC) == pytest.approx(0.11)


class TestStartState:
    def test_root_is_true_virtual(self):
        eng, search = build_search()
        search.start()
        root = search.shg.find("TopLevelHypothesis", whole_program(search.space))
        assert root.state is NodeState.TRUE

    def test_top_hypotheses_queued(self):
        eng, search = build_search()
        search.start()
        for hyp in (CPU, SYNC, "ExcessiveIOBlockingTime"):
            node = search.shg.find(hyp, whole_program(search.space))
            assert node is not None and node.state is NodeState.QUEUED

    def test_double_start_rejected(self):
        eng, search = build_search()
        search.start()
        with pytest.raises(RuntimeError):
            search.start()

    def test_high_priority_enqueued_persistent(self):
        f = whole_program().with_selection("Code", "/Code/a.c/f")
        ds = DirectiveSet(priorities=[PriorityDirective(CPU, f, Priority.HIGH)])
        eng, search = build_search(directives=ds)
        search.start()
        node = search.shg.find(CPU, f)
        assert node.persistent and node.priority is Priority.HIGH


class TestQueueOrdering:
    def test_priority_then_depth(self):
        eng, search = build_search()
        search.start()
        # drain the heap directly: priority rank dominates, then depth
        import heapq

        popped = []
        heap = list(search._pending)
        heapq.heapify(heap)
        while heap:
            popped.append(heapq.heappop(heap))
        keys = [(p[0], p[1]) for p in popped]
        assert keys == sorted(keys)


class TestCompletion:
    def test_is_complete_after_run(self):
        eng, search = build_search()
        search.start()
        eng.run()
        assert search.is_complete()
        assert search.done_at is not None

    def test_not_complete_at_start(self):
        eng, search = build_search()
        search.start()
        assert not search.is_complete()
