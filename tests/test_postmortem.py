"""Tests for postmortem hypothesis evaluation and directive extraction."""

import pytest

from repro.apps.synthetic import make_io_app, make_pingpong
from repro.core import (
    SearchConfig,
    evaluate_postmortem,
    extract_directives,
    extract_directives_postmortem,
    run_diagnosis,
)
from repro.core.shg import Priority
from repro.metrics import CostModel
from repro.resources import whole_program

SYNC = "ExcessiveSyncWaitingTime"
CPU = "CPUbound"
IO = "ExcessiveIOBlockingTime"

FAST = SearchConfig(
    min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0,
    noise_band=0.0,
)


@pytest.fixture(scope="module")
def pingpong_record():
    app = make_pingpong(iterations=120, slow=1.0, fast=0.2)
    return run_diagnosis(app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0))


class TestEvaluatePostmortem:
    def test_top_level_conclusions(self, pingpong_record):
        rec = pingpong_record
        conclusions = evaluate_postmortem(rec.flat_profile(), rec.space(), rec.placement)
        by_key = {(c.hypothesis, str(c.focus)): c for c in conclusions}
        wp = str(whole_program(rec.space()))
        assert by_key[(SYNC, wp)].is_true
        assert not by_key[(CPU, wp)].is_true
        assert not by_key[(IO, wp)].is_true

    def test_false_nodes_not_refined(self, pingpong_record):
        rec = pingpong_record
        conclusions = evaluate_postmortem(rec.flat_profile(), rec.space(), rec.placement)
        # no CPU conclusions below the whole program (CPU tested false there)
        cpu = [c for c in conclusions if c.hypothesis == CPU]
        assert len(cpu) == 1

    def test_values_match_ground_truth(self, pingpong_record):
        rec = pingpong_record
        conclusions = evaluate_postmortem(rec.flat_profile(), rec.space(), rec.placement)
        wp = str(whole_program(rec.space()))
        sync_wp = next(c for c in conclusions if c.hypothesis == SYNC and str(c.focus) == wp)
        profile = rec.flat_profile()
        expected = profile.focus_fraction(
            whole_program(rec.space()), ("sync",), rec.placement
        )
        assert sync_wp.value == pytest.approx(expected)

    def test_threshold_override(self, pingpong_record):
        rec = pingpong_record
        high = evaluate_postmortem(
            rec.flat_profile(), rec.space(), rec.placement, thresholds={SYNC: 0.99}
        )
        assert not any(c.is_true for c in high if c.hypothesis == SYNC)

    def test_deterministic(self, pingpong_record):
        rec = pingpong_record
        a = evaluate_postmortem(rec.flat_profile(), rec.space(), rec.placement)
        b = evaluate_postmortem(rec.flat_profile(), rec.space(), rec.placement)
        assert [(c.hypothesis, str(c.focus), c.is_true) for c in a] == [
            (c.hypothesis, str(c.focus), c.is_true) for c in b
        ]


class TestExtractPostmortem:
    def test_priorities_produced(self, pingpong_record):
        rec = pingpong_record
        ds = extract_directives_postmortem(rec.flat_profile(), rec.space(), rec.placement)
        levels = {(p.hypothesis, str(p.focus)): p.level for p in ds.priorities}
        wp = str(whole_program(rec.space()))
        assert levels[(SYNC, wp)] is Priority.HIGH
        assert levels[(CPU, wp)] is Priority.LOW

    def test_agrees_with_online_extraction(self, pingpong_record):
        """The postmortem high-priority set matches the online one for a
        stable workload (the future-work claim: directives can come from
        raw data gathered by any tool)."""
        rec = pingpong_record
        online = extract_directives(rec, include_general_prunes=False,
                                    include_historic_prunes=False,
                                    include_pair_prunes=False)
        post = extract_directives_postmortem(
            rec.flat_profile(), rec.space(), rec.placement,
            include_pair_prunes=False, include_historic_prunes=False,
        )
        online_high = {
            (p.hypothesis, str(p.focus))
            for p in online.priorities if p.level is Priority.HIGH
        }
        post_high = {
            (p.hypothesis, str(p.focus))
            for p in post.priorities if p.level is Priority.HIGH
        }
        # near-total agreement (online search may miss cost-limited detail)
        assert len(online_high & post_high) >= 0.8 * len(online_high)

    def test_tiny_function_pruned(self):
        app = make_io_app(iterations=60, compute=0.5, io=0.5)
        rec = run_diagnosis(app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0))
        ds = extract_directives_postmortem(rec.flat_profile(), rec.space(), rec.placement)
        assert any(p.resource == "/Code/wr.c/main" for p in ds.prunes)

    def test_thresholds_flag(self, pingpong_record):
        rec = pingpong_record
        ds = extract_directives_postmortem(
            rec.flat_profile(), rec.space(), rec.placement, include_thresholds=True
        )
        assert any(t.hypothesis == SYNC for t in ds.thresholds)

    def test_directed_run_with_postmortem_directives(self, pingpong_record):
        rec = pingpong_record
        ds = extract_directives_postmortem(rec.flat_profile(), rec.space(), rec.placement)
        directed = run_diagnosis(
            make_pingpong(iterations=120, slow=1.0, fast=0.2),
            directives=ds,
            config=FAST,
            cost_model=CostModel(perturb_per_unit=0.0),
        )
        # the known bottleneck is found immediately via the high priorities
        wp = str(whole_program(rec.space()))
        assert directed.found_times()[(SYNC, wp)] <= rec.found_times()[(SYNC, wp)]
