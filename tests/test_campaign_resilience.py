"""Campaign robustness: backoff, timeouts, salvage, the journal, and
resume-after-SIGKILL."""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.apps.poisson import PoissonConfig, build_poisson
from repro.apps.synthetic import make_pingpong
from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignJournal,
    JournalError,
    PoolExecutor,
    RunSpec,
    RunTimeout,
    SerialExecutor,
)
from repro.campaign.executors import _timed_call
from repro.core import SearchConfig
from repro.faults import FaultPlan
from repro.storage import ExperimentStore

FAST = SearchConfig(min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0)

# A plan that kills one Poisson process mid-run: its peers wedge on their
# recvs, the watchdog fires, and an undirected session raises SimTimeout.
CRASH_PLAN = FaultPlan(seed=3, crash_at={"Poisson:2": 12.0}, max_virtual_time=60.0)


def _spec(**kwargs):
    kwargs.setdefault("config", FAST)
    return RunSpec(make_pingpong, builder_kwargs={"iterations": 60}, **kwargs)


def _poisson_spec(faults=None):
    return RunSpec(
        build_poisson, ("C", PoissonConfig(iterations=40)),
        config=FAST, faults=faults,
    )


def _always_fails(iterations=0):
    raise RuntimeError("boom")


def _slow_builder(iterations=60):
    time.sleep(5.0)
    return make_pingpong(iterations=iterations)


class TestBackoff:
    def test_exponential_backoff_between_retry_rounds(self):
        events = []
        start = time.perf_counter()
        result = Campaign(
            specs=[RunSpec(_always_fails)], name="b",
            retries=2, backoff=0.05, backoff_factor=2.0,
        ).run(progress=events.append)
        elapsed = time.perf_counter() - start
        assert result.failures == {"b-runs-000": "boom"}
        retries = [e for e in events if e["event"] == "run-retried"]
        assert [e["attempt"] for e in retries] == [1, 2]
        assert [e["backoff"] for e in retries] == [0.05, 0.1]
        assert elapsed >= 0.15  # both sleeps actually happened

    def test_zero_retries_never_retries(self):
        events = []
        result = Campaign(
            specs=[RunSpec(_always_fails)], name="b", retries=0,
        ).run(progress=events.append)
        assert result.stage("runs").retried == []
        assert "run-retried" not in [e["event"] for e in events]
        assert result.failures

    def test_invalid_retry_config_rejected(self):
        with pytest.raises(CampaignError):
            Campaign(specs=[_spec()], retries=-1)
        with pytest.raises(CampaignError):
            Campaign(specs=[_spec()], backoff=-0.1)
        with pytest.raises(CampaignError):
            Campaign(specs=[_spec()], backoff_factor=0.5)


class TestRunTimeout:
    def test_timed_call_passes_results_and_errors_through(self):
        assert _timed_call(lambda x: x + 1, 1, timeout=5.0) == 2
        with pytest.raises(ValueError):
            _timed_call(lambda x: (_ for _ in ()).throw(ValueError("v")), 0, 5.0)

    def test_serial_run_timeout(self):
        result = Campaign(
            specs=[RunSpec(_slow_builder)], name="t", retries=0,
        ).run(SerialExecutor(), run_timeout=0.2)
        [(run_id, error)] = result.failures.items()
        assert "wall clock" in error

    def test_pool_run_timeout(self):
        result = Campaign(
            specs=[RunSpec(_slow_builder), _spec()], name="t", retries=0,
        ).run(PoolExecutor(2), run_timeout=2.0)
        assert "wall clock" in result.failures["t-runs-000"]
        assert len(result.records) == 1  # the healthy run still landed

    def test_timeout_is_not_salvaged(self):
        """RunTimeout is an infrastructure failure, not a simulator fault —
        no degraded re-execution should be attempted."""
        events = []
        Campaign(specs=[RunSpec(_slow_builder)], name="t", retries=0).run(
            run_timeout=0.2, progress=events.append,
        )
        assert "run-salvaged" not in [e["event"] for e in events]


class TestSalvage:
    def test_simulator_failure_salvaged_as_degraded(self):
        events = []
        result = Campaign(
            specs=[_poisson_spec(faults=CRASH_PLAN), _poisson_spec()],
            name="s", retries=0,
        ).run(progress=events.append)
        assert not result.failures
        assert result.stage("runs").degraded == ["s-runs-000"]
        assert "run-salvaged" in [e["event"] for e in events]
        salvaged = result.stage("runs").records[0]
        assert salvaged.status == "degraded"
        assert "SimTimeout" in salvaged.failure
        healthy = result.stage("runs").records[1]
        assert healthy.status == "complete"

    def test_builder_failure_not_salvaged(self):
        events = []
        result = Campaign(specs=[RunSpec(_always_fails)], name="s", retries=0).run(
            progress=events.append,
        )
        assert result.failures == {"s-runs-000": "boom"}
        assert "run-salvaged" not in [e["event"] for e in events]


class TestJournal:
    def test_final_outcomes_journalled(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        Campaign(
            specs=[_spec(), RunSpec(_always_fails)], name="j", retries=0,
        ).run(journal=jpath)
        entries = list(CampaignJournal(jpath).entries())
        assert [(e["run_id"], e["status"]) for e in entries] == [
            ("j-runs-000", "ok"), ("j-runs-001", "failed"),
        ]
        assert entries[0]["record"]["run_id"] == "j-runs-000"
        assert entries[1]["error"] == "boom"

    def test_finished_excludes_failures_and_respects_campaign(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        Campaign(
            specs=[_spec(), RunSpec(_always_fails)], name="j", retries=0,
        ).run(journal=jpath)
        journal = CampaignJournal(jpath)
        assert sorted(journal.finished("j")) == ["j-runs-000"]
        assert journal.finished("other-campaign") == {}

    def test_torn_final_line_tolerated(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        Campaign(specs=[_spec()], name="j").run(journal=jpath)
        with open(jpath, "a") as fh:
            fh.write('{"campaign": "j", "run_id": "torn", "sta')  # the kill landed here
        assert sorted(CampaignJournal(jpath).finished("j")) == ["j-runs-000"]

    def test_append_after_torn_line_repairs_tail(self, tmp_path):
        """Appending after a torn final line must not glue the new entry
        onto the fragment (which would corrupt a mid-file line)."""
        jpath = tmp_path / "j.jsonl"
        Campaign(specs=[_spec()], name="j").run(journal=jpath)
        with open(jpath, "a") as fh:
            fh.write('{"campaign": "j", "run_id": "torn", "sta')
        journal = CampaignJournal(jpath)
        journal.append({"campaign": "j", "run_id": "after", "status": "ok"})
        journal.close()
        entries = list(CampaignJournal(jpath).entries())
        assert [e["run_id"] for e in entries] == ["j-runs-000", "after"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        jpath.write_text('not json\n{"run_id": "x", "status": "ok"}\n')
        with pytest.raises(JournalError):
            list(CampaignJournal(jpath).entries())

    def test_resume_requires_journal(self):
        with pytest.raises(CampaignError, match="needs a journal"):
            Campaign(specs=[_spec()], name="j").run(resume=True)

    def test_resume_skips_journalled_runs(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        campaign = Campaign(specs=[_spec(), _spec()], name="j")
        first = campaign.run(journal=jpath)
        events = []
        second = campaign.run(journal=jpath, resume=True, progress=events.append)
        kinds = [e["event"] for e in events]
        assert kinds.count("run-skipped") == 2
        assert "run-finished" not in kinds
        assert second.stage("runs").resumed == ["j-runs-000", "j-runs-001"]
        # restored records equal the originals
        assert [r.to_dict() for r in second.records] == [
            r.to_dict() for r in first.records
        ]

    def test_resume_reruns_journalled_failures(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        flag = tmp_path / "fixed.flag"

        Campaign(
            specs=[RunSpec(_fail_until_flag, (str(flag),))], name="j", retries=0,
        ).run(journal=jpath)
        assert CampaignJournal(jpath).finished("j") == {}

        flag.write_text("")  # the transient condition clears
        result = Campaign(
            specs=[RunSpec(_fail_until_flag, (str(flag),))], name="j", retries=0,
        ).run(journal=jpath, resume=True)
        assert not result.failures
        assert sorted(CampaignJournal(jpath).finished("j")) == ["j-runs-000"]


def _fail_until_flag(flag_path, iterations=60):
    if not os.path.exists(flag_path):
        raise RuntimeError("still broken")
    return make_pingpong(iterations=iterations)


class TestStoreDegrade:
    """on_store_failure="degrade": a sick archive costs durability, not
    the compute already spent on the runs."""

    @staticmethod
    def _broken_store(tmp_path, monkeypatch, fail_ids):
        from repro.storage import StoreError

        store = ExperimentStore(tmp_path / "runs")
        real_save = store.save

        def save(record, **kwargs):
            if record.run_id in fail_ids:
                raise StoreError("archive on fire")
            return real_save(record, **kwargs)

        monkeypatch.setattr(store, "save", save)
        return store

    def test_default_raise_aborts_campaign(self, tmp_path, monkeypatch):
        store = self._broken_store(tmp_path, monkeypatch, {"d-runs-000"})
        with pytest.raises(Exception, match="archive on fire"):
            Campaign(specs=[_spec()], name="d").run(store=store)

    def test_degrade_keeps_record_and_continues(self, tmp_path, monkeypatch):
        store = self._broken_store(tmp_path, monkeypatch, {"d-runs-000"})
        events = []
        result = Campaign(specs=[_spec(), _spec()], name="d").run(
            store=store, on_store_failure="degrade", progress=events.append,
        )
        assert not result.failures
        assert len(result.records) == 2  # both runs survive in memory
        assert result.stage("runs").store_failures == {
            "d-runs-000": "archive on fire",
        }
        assert result.store_failures == {"d-runs-000": "archive on fire"}
        degraded = [e for e in events if e["event"] == "store-degraded"]
        assert [e["run_id"] for e in degraded] == ["d-runs-000"]
        assert "archive on fire" in degraded[0]["error"]
        # the healthy run still landed on disk
        assert ExperimentStore(tmp_path / "runs").list() == ["d-runs-001"]
        assert "1 unsaved" in result.summary()

    def test_degrade_still_journals_the_run(self, tmp_path, monkeypatch):
        store = self._broken_store(tmp_path, monkeypatch, {"d-runs-000"})
        jpath = tmp_path / "j.jsonl"
        Campaign(specs=[_spec()], name="d").run(
            store=store, on_store_failure="degrade", journal=jpath,
        )
        assert sorted(CampaignJournal(jpath).finished("d")) == ["d-runs-000"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(CampaignError, match="on_store_failure"):
            Campaign(specs=[_spec()], name="d").run(on_store_failure="ignore")


# ---------------------------------------------------------------------------
# resume after SIGKILL
# ---------------------------------------------------------------------------
N_KILL_RUNS = 8


def _killable_campaign(root):
    specs = [
        RunSpec(
            make_pingpong, builder_kwargs={"iterations": 60},
            config=FAST, pre_delay=0.15,
        )
        for _ in range(N_KILL_RUNS)
    ]
    Campaign(specs=specs, name="kill", retries=0).run(
        journal=os.path.join(root, "j.jsonl"),
        store=os.path.join(root, "store"),
    )


def _journal_lines(path):
    if not os.path.exists(path):
        return 0
    with open(path) as fh:
        return sum(1 for line in fh if line.strip())


class TestResumeAfterKill:
    def test_sigkill_mid_campaign_then_resume(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        ctx = multiprocessing.get_context()
        child = ctx.Process(target=_killable_campaign, args=(str(tmp_path),))
        child.start()
        # wait until some (but not all) runs are journalled, then kill -9
        deadline = time.monotonic() + 60.0
        while _journal_lines(jpath) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        done_before = set(CampaignJournal(jpath).finished("kill"))
        assert done_before, "journal should hold the completed runs"
        assert len(done_before) < N_KILL_RUNS, "kill landed after completion"

        specs = [
            RunSpec(
                make_pingpong, builder_kwargs={"iterations": 60},
                config=FAST, pre_delay=0.15,
            )
            for _ in range(N_KILL_RUNS)
        ]
        events = []
        result = Campaign(specs=specs, name="kill", retries=0).run(
            journal=jpath, resume=True,
            store=tmp_path / "store", progress=events.append,
        )
        # only the unfinished runs were re-executed
        kinds = [e["event"] for e in events]
        assert kinds.count("run-skipped") == len(done_before)
        assert kinds.count("run-finished") == N_KILL_RUNS - len(done_before)
        assert not result.failures
        assert len(result.records) == N_KILL_RUNS
        assert len(CampaignJournal(jpath).finished("kill")) == N_KILL_RUNS
        # every record is in the store exactly once
        store = ExperimentStore(tmp_path / "store")
        assert len(store.list()) == N_KILL_RUNS


# ---------------------------------------------------------------------------
# the acceptance scenario: faults + retries + salvage, end to end
# ---------------------------------------------------------------------------
class TestFaultyCampaignEndToEnd:
    def test_eight_runs_two_crashing(self, tmp_path):
        specs = [
            _poisson_spec(faults=CRASH_PLAN if i in (2, 5) else None)
            for i in range(8)
        ]
        events = []
        result = Campaign(
            specs=specs, name="e2e", retries=1, backoff=0.01,
        ).run(workers=4, store=tmp_path / "runs", progress=events.append)

        # the campaign completed: crashing runs degraded, none fatal
        assert not result.failures
        assert len(result.records) == 8
        assert sorted(result.stage("runs").degraded) == ["e2e-runs-002", "e2e-runs-005"]
        for run_id in ("e2e-runs-002", "e2e-runs-005"):
            record = next(r for r in result.records if r.run_id == run_id)
            assert record.status == "degraded"
            assert record.failure
        # the crashing runs were retried (with backoff) before salvage
        retried = result.stage("runs").retried
        assert sorted(set(retried)) == ["e2e-runs-002", "e2e-runs-005"]
        assert [e["event"] for e in events].count("run-salvaged") == 2
        healthy = [r for r in result.records if not r.degraded]
        assert len(healthy) == 6
        assert all(r.coverage == 1.0 for r in healthy)
