"""Tests for trace records."""

import pytest

from repro.simulator import Activity, TimeSegment, TraceCollector, sync_tag_parts


class TestSyncTagParts:
    def test_message_tag(self):
        assert sync_tag_parts("3/0") == ("SyncObject", "Message", "3", "0")

    def test_negative_tag(self):
        assert sync_tag_parts("3/-1") == ("SyncObject", "Message", "3", "-1")

    def test_barrier(self):
        assert sync_tag_parts("Barrier") == ("SyncObject", "Barrier")

    def test_single_component_tag(self):
        assert sync_tag_parts("7") == ("SyncObject", "Message", "7")


class TestTimeSegment:
    def test_make_fills_parts(self):
        seg = TimeSegment.make(
            start=1.0, duration=2.0, activity=Activity.SYNC,
            process="p:1", node="n0", module="m.c", function="f", tag="3/0",
        )
        assert seg.parts["Code"] == ("Code", "m.c", "f")
        assert seg.parts["Machine"] == ("Machine", "n0")
        assert seg.parts["Process"] == ("Process", "p:1")
        assert seg.parts["SyncObject"] == ("SyncObject", "Message", "3", "0")
        assert seg.end == pytest.approx(3.0)

    def test_no_tag_no_syncobject_part(self):
        seg = TimeSegment.make(
            start=0.0, duration=1.0, activity=Activity.COMPUTE,
            process="p", node="n", module="m", function="f",
        )
        assert "SyncObject" not in seg.parts


class TestTraceCollector:
    def test_totals_by_activity(self):
        tc = TraceCollector()
        tc.record(TimeSegment.make(0, 2.0, Activity.COMPUTE, "p", "n", "m", "f"))
        tc.record(TimeSegment.make(2, 3.0, Activity.SYNC, "p", "n", "m", "g", tag="1/0"))
        assert tc.total() == pytest.approx(5.0)
        assert tc.total(Activity.SYNC) == pytest.approx(3.0)

    def test_by_function(self):
        tc = TraceCollector()
        tc.record(TimeSegment.make(0, 2.0, Activity.COMPUTE, "p", "n", "m", "f"))
        tc.record(TimeSegment.make(2, 1.0, Activity.COMPUTE, "p", "n", "m", "f"))
        assert tc.by_function()[("m", "f")] == pytest.approx(3.0)
