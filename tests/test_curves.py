"""Tests for discovery-progress curves."""

import math

import pytest

from repro.analysis import (
    DiscoveryCurve,
    base_bottleneck_set,
    discovery_curve,
    render_curves,
    time_to_fraction,
)
from repro.apps.synthetic import make_pingpong
from repro.core import SearchConfig, run_diagnosis
from repro.metrics import CostModel

FAST = SearchConfig(
    min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0,
    noise_band=0.0,
)


@pytest.fixture(scope="module")
def record():
    return run_diagnosis(
        make_pingpong(iterations=100, slow=1.0, fast=0.2),
        config=FAST, cost_model=CostModel(perturb_per_unit=0.0),
    )


class TestDiscoveryCurve:
    def test_monotone_nondecreasing(self, record):
        base = base_bottleneck_set(record, margin=0.05)
        curve = discovery_curve(record, base)
        fracs = [f for _, f in curve.points]
        assert fracs == sorted(fracs)
        assert fracs[-1] == pytest.approx(1.0)

    def test_matches_time_to_fraction(self, record):
        base = base_bottleneck_set(record, margin=0.05)
        curve = discovery_curve(record, base)
        times = time_to_fraction(record, base)
        for frac, t in times.items():
            assert curve.time_to(frac) == pytest.approx(t)

    def test_fraction_at_before_first_point(self, record):
        base = base_bottleneck_set(record, margin=0.05)
        curve = discovery_curve(record, base)
        assert curve.fraction_at(0.0) == 0.0

    def test_time_to_unreachable(self):
        curve = DiscoveryCurve("x", points=((1.0, 0.5),), total=2)
        assert math.isinf(curve.time_to(1.0))

    def test_empty_base_set(self, record):
        curve = discovery_curve(record, set())
        assert curve.points == ()
        assert curve.total == 0

    def test_sampled_length_and_range(self, record):
        base = base_bottleneck_set(record, margin=0.05)
        curve = discovery_curve(record, base)
        samples = curve.sampled(25)
        assert len(samples) == 25
        assert all(0.0 <= s <= 1.0 for s in samples)
        assert samples[-1] == pytest.approx(1.0)


class TestRenderCurves:
    def test_render_contains_labels_and_final_fraction(self, record):
        base = base_bottleneck_set(record, margin=0.05)
        curve = discovery_curve(record, base, label="undirected")
        text = render_curves([curve])
        assert "undirected" in text
        assert "100%" in text

    def test_render_empty(self):
        assert render_curves([]) == ""

    def test_shared_horizon(self, record):
        base = base_bottleneck_set(record, margin=0.05)
        fast = DiscoveryCurve("fast", points=((1.0, 1.0),), total=1)
        slow = discovery_curve(record, base, label="slow")
        text = render_curves([fast, slow])
        lines = text.splitlines()
        # the fast curve saturates immediately on the shared axis
        fast_line = next(l for l in lines if l.startswith("fast"))
        assert fast_line.rstrip().endswith("100%")
