"""Seeded I/O fault injection: plan validation, determinism, the
process-global arming point, and the injector's strike log."""

import errno
import sqlite3

import pytest

from repro.faults import FaultPlanError, IOFault, IOFaultPlan, SimulatedCrash
from repro.faults import io as io_faults


class TestPlanValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown I/O op"):
            IOFault(op="mmap", at=0, kind="eio")

    def test_kind_must_match_op(self):
        with pytest.raises(FaultPlanError, match="does not apply"):
            IOFault(op="read", at=0, kind="enospc")

    def test_negative_index_rejected(self):
        with pytest.raises(FaultPlanError, match=">= 0"):
            IOFault(op="write", at=-1, kind="eio")

    def test_times_floor(self):
        with pytest.raises(FaultPlanError, match="times"):
            IOFault(op="write", at=0, kind="eio", times=0)

    def test_arg_range(self):
        with pytest.raises(FaultPlanError, match="arg"):
            IOFault(op="write", at=0, kind="short", arg=1.5)

    def test_plan_coerces_dict_faults(self):
        plan = IOFaultPlan(seed=1, faults=(
            {"op": "fsync", "at": 2, "kind": "lost"},
        ))
        assert plan.faults[0] == IOFault(op="fsync", at=2, kind="lost")

    def test_round_trip(self):
        plan = IOFaultPlan.random(7)
        again = IOFaultPlan.from_dict(plan.to_dict())
        assert again == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError, match="unknown"):
            IOFaultPlan.from_dict({"seed": 0, "chaos": True})

    def test_random_is_deterministic(self):
        assert IOFaultPlan.random(42) == IOFaultPlan.random(42)
        assert IOFaultPlan.random(42) != IOFaultPlan.random(43)

    def test_random_respects_menu(self):
        for seed in range(40):
            for fault in IOFaultPlan.random(seed, horizon=8).faults:
                assert fault.kind in io_faults.KINDS_FOR_OP[fault.op]
                assert 0 <= fault.at < 8

    def test_describe_names_every_fault(self):
        plan = IOFaultPlan(faults=(
            IOFault(op="write", at=3, kind="eio", times=2),
        ))
        assert "eio@write[3+2]" in plan.describe()


class TestInjector:
    def test_strikes_at_the_scheduled_index(self):
        inj = io_faults.IOFaultInjector(IOFaultPlan(faults=(
            IOFault(op="write", at=2, kind="eio"),
        )))
        assert inj.on("write") is None
        assert inj.on("write") is None
        with pytest.raises(OSError) as exc_info:
            inj.on("write", "/tmp/x")
        assert exc_info.value.errno == errno.EIO
        assert inj.on("write") is None  # transient: cleared after `times`
        assert inj.injected == [("write", 2, "eio", "/tmp/x")]

    def test_times_covers_consecutive_calls(self):
        inj = io_faults.IOFaultInjector(IOFaultPlan(faults=(
            IOFault(op="fsync", at=0, kind="eio", times=2),
        )))
        for _ in range(2):
            with pytest.raises(OSError):
                inj.on("fsync")
        assert inj.on("fsync") is None

    def test_counters_are_per_op(self):
        inj = io_faults.IOFaultInjector(IOFaultPlan(faults=(
            IOFault(op="read", at=0, kind="eio"),
        )))
        assert inj.on("write") is None  # write counter, not read's
        with pytest.raises(OSError):
            inj.on("read")

    def test_path_part_filter(self):
        inj = io_faults.IOFaultInjector(IOFaultPlan(faults=(
            IOFault(op="replace", at=0, kind="eio", times=99,
                    path_part="index"),
        )))
        assert inj.on("replace", "/store/r0.json") is None
        with pytest.raises(OSError):
            inj.on("replace", "/store/index.json")

    def test_enospc_and_busy_kinds(self):
        inj = io_faults.IOFaultInjector(IOFaultPlan(faults=(
            IOFault(op="write", at=0, kind="enospc"),
            IOFault(op="sqlite", at=0, kind="busy"),
        )))
        with pytest.raises(OSError) as exc_info:
            inj.on("write")
        assert exc_info.value.errno == errno.ENOSPC
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            inj.on("sqlite")

    def test_crash_is_not_an_exception_subclass(self):
        inj = io_faults.IOFaultInjector(IOFaultPlan(faults=(
            IOFault(op="replace", at=0, kind="crash"),
        )))
        with pytest.raises(SimulatedCrash):
            inj.on("replace")
        assert not issubclass(SimulatedCrash, Exception)

    def test_mediated_kinds_return_action(self):
        inj = io_faults.IOFaultInjector(IOFaultPlan(faults=(
            IOFault(op="write", at=0, kind="short", arg=0.25),
            IOFault(op="fsync", at=0, kind="lost"),
        )))
        assert inj.on("write") == ("short", 0.25)
        assert inj.on("fsync") == ("lost", 0.5)


class TestArming:
    def test_disarmed_check_is_none(self):
        assert io_faults.active() is None
        assert io_faults.check("write", "/anything") is None

    def test_injected_context_arms_and_disarms(self):
        plan = IOFaultPlan(faults=(IOFault(op="read", at=0, kind="eio"),))
        with io_faults.injected(plan) as inj:
            assert io_faults.active() is inj
            with pytest.raises(OSError):
                io_faults.check("read", "x")
        assert io_faults.active() is None
        assert inj.injected == [("read", 0, "eio", "x")]

    def test_double_arm_rejected(self):
        plan = IOFaultPlan()
        with io_faults.injected(plan):
            with pytest.raises(FaultPlanError, match="already armed"):
                io_faults.arm(plan)

    def test_disarm_returns_injector(self):
        inj = io_faults.arm(IOFaultPlan())
        assert io_faults.disarm() is inj
        assert io_faults.disarm() is None
