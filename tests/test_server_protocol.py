"""Tests for the JSONL TCP protocol, client shim, and server thread."""

import json
import socket

import pytest

from repro.server import ServerBusy, ServerClient, ServerThread, TenantPolicy


@pytest.fixture(scope="module")
def server():
    with ServerThread(max_concurrent=2, queue_limit=4, slice_events=200) as srv:
        yield srv


class TestProtocol:
    def test_ping(self, server):
        with ServerClient(server.host, server.port) as client:
            assert client.ping()

    def test_diagnose_returns_record_dict(self, server):
        with ServerClient(server.host, server.port) as client:
            record = client.diagnose("tester", iterations=20, run_id="wire-1")
        assert record["run_id"] == "wire-1"
        assert record["app_name"] == "tester"
        assert record["status"] == "complete"
        assert record["shg_nodes"]  # the full record crossed the wire

    def test_progress_streaming(self, server):
        events = []
        with ServerClient(server.host, server.port) as client:
            client.diagnose("tester", iterations=20, progress=events.append)
        kinds = [e["event"] for e in events]
        assert "session-queued" in kinds
        assert "session-started" in kinds
        assert "session-finished" in kinds

    def test_search_overrides_cross_the_wire(self, server):
        with ServerClient(server.host, server.port) as client:
            record = client.diagnose(
                "tester", iterations=20,
                search={"cost_limit": 7.5, "min_interval": 5.0},
            )
        assert record["config"]["cost_limit"] == 7.5
        assert record["config"]["min_interval"] == 5.0

    def test_store_roundtrip(self, server, tmp_path):
        from repro.storage import ExperimentStore

        with ServerClient(server.host, server.port) as client:
            record = client.diagnose(
                "tester", iterations=20, run_id="stored",
                store=str(tmp_path / "runs"),
            )
        loaded = ExperimentStore(tmp_path / "runs").load("stored")
        assert loaded.to_dict() == record

    def test_unknown_app_is_error(self, server):
        with ServerClient(server.host, server.port) as client:
            with pytest.raises(RuntimeError, match="unknown application"):
                client.diagnose("nosuch")
            # The connection survives the error.
            assert client.ping()

    def test_unknown_op_is_error(self, server):
        with ServerClient(server.host, server.port) as client:
            event = next(client.request({"op": "frobnicate"}))
        assert event["event"] == "error"

    def test_malformed_json_is_error(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=30) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            event = json.loads(f.readline())
        assert event["event"] == "error"

    def test_metrics_op(self, server):
        with ServerClient(server.host, server.port) as client:
            client.diagnose("tester", iterations=20)
            reply = client.metrics()
        assert reply["metrics"]["sessions_completed"] >= 1
        assert "repro_server_sessions_completed" in reply["prom"]

    def test_concurrent_clients(self, server):
        import threading

        records, errors = [], []

        def one(i):
            try:
                with ServerClient(server.host, server.port) as client:
                    records.append(client.diagnose(
                        "tester", iterations=20, run_id=f"conc-{i}"
                    ))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=one, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert {r["run_id"] for r in records} == {f"conc-{i}" for i in range(4)}


class TestServeCommand:
    def test_sigint_shutdown_is_clean_with_open_connection(self):
        """Ctrl-C with a connected client must exit 0 without dumping
        CancelledError tracebacks from the cancelled connection handlers."""
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            host, port = banner.split()[3].rsplit(":", 1)
            with ServerClient(host, int(port)) as client:
                assert client.ping()
                proc.send_signal(signal.SIGINT)
                assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        tail = proc.stdout.read()
        assert "Traceback" not in tail
        assert "server stopped" in tail


class TestTenantOverWire:
    def test_tenant_policy_applies(self):
        with ServerThread(
            max_concurrent=2, slice_events=200,
            tenants={"small": TenantPolicy(cost_limit=2.0)},
        ) as srv:
            with ServerClient(srv.host, srv.port) as client:
                record = client.diagnose(
                    "tester", iterations=20, tenant="small",
                    search={"cost_limit": 50.0},
                )
        assert record["config"]["cost_limit"] == 2.0

    def test_rejection_over_wire(self):
        # queue_limit=1 with one slot busy: the second queued submission
        # must be rejected with a ServerBusy the client shim re-raises.
        with ServerThread(max_concurrent=1, queue_limit=1,
                          slice_events=10) as srv:
            clients = [ServerClient(srv.host, srv.port) for _ in range(8)]
            try:
                import threading

                busy = []

                def spin(c):
                    try:
                        c.diagnose("tester", iterations=60)
                    except ServerBusy:
                        busy.append(True)

                threads = [threading.Thread(target=spin, args=(c,))
                           for c in clients]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=120)
                assert busy  # at least one submission hit backpressure
            finally:
                for c in clients:
                    c.close()
