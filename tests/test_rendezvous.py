"""Tests for the rendezvous (large-message) send protocol."""

import pytest

from repro.simulator import (
    Activity,
    Compute,
    Engine,
    Irecv,
    LatencyModel,
    Machine,
    Recv,
    Send,
    SimDeadlock,
    TraceCollector,
    WaitReq,
)

RDV = LatencyModel(
    alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0, eager_threshold=1024.0
)


def run_pair(p0, p1, latency=RDV):
    eng = Engine(Machine.named("n", 2), latency=latency)
    tc = TraceCollector()
    eng.add_sink(tc)
    eng.add_process("a", "n0", p0)
    eng.add_process("b", "n1", p1)
    t = eng.run()
    return eng, tc, t


class TestRendezvous:
    def test_large_send_blocks_until_recv_posted(self):
        def sender(proc):
            with proc.function("m", "snd"):
                yield Send("b", "t/0", 1_000_000)  # above threshold

        def receiver(proc):
            with proc.function("m", "rcv"):
                yield Compute(3.0)
                yield Recv("a", "t/0")

        eng, tc, t = run_pair(sender, receiver)
        waits = [s for s in tc.segments if s.activity is Activity.SYNC]
        # the sender waits three seconds for the receive to be posted
        sender_waits = [s for s in waits if s.process == "a"]
        assert sender_waits and sender_waits[0].duration == pytest.approx(3.0)
        assert sender_waits[0].tag == "t/0"
        assert (sender_waits[0].module, sender_waits[0].function) == ("m", "snd")

    def test_small_send_stays_eager(self):
        def sender(proc):
            with proc.function("m", "snd"):
                yield Send("b", "t/0", 8)  # below threshold
                yield Compute(1.0)

        def receiver(proc):
            with proc.function("m", "rcv"):
                yield Compute(3.0)
                yield Recv("a", "t/0")

        eng, tc, t = run_pair(sender, receiver)
        sender_waits = [
            s for s in tc.segments if s.activity is Activity.SYNC and s.process == "a"
        ]
        assert not sender_waits

    def test_pre_posted_recv_no_sender_wait(self):
        def sender(proc):
            with proc.function("m", "snd"):
                yield Compute(2.0)
                yield Send("b", "t/0", 1_000_000)

        def receiver(proc):
            with proc.function("m", "rcv"):
                yield Recv("a", "t/0")  # posted before the send happens

        eng, tc, t = run_pair(sender, receiver)
        sender_waits = [
            s for s in tc.segments if s.activity is Activity.SYNC and s.process == "a"
        ]
        assert not sender_waits
        # the receiver carries the wait instead
        recv_waits = [
            s for s in tc.segments if s.activity is Activity.SYNC and s.process == "b"
        ]
        assert recv_waits and recv_waits[0].duration == pytest.approx(2.0)

    def test_irecv_releases_rendezvous(self):
        def sender(proc):
            with proc.function("m", "snd"):
                yield Send("b", "t/0", 1_000_000)

        def receiver(proc):
            with proc.function("m", "rcv"):
                yield Compute(2.0)
                req = yield Irecv("a", "t/0")
                yield WaitReq(req)

        eng, tc, t = run_pair(sender, receiver)
        sender_waits = [
            s for s in tc.segments if s.activity is Activity.SYNC and s.process == "a"
        ]
        assert sender_waits and sender_waits[0].duration == pytest.approx(2.0)
        assert t == pytest.approx(2.0)

    def test_unmatched_rendezvous_deadlocks(self):
        def sender(proc):
            with proc.function("m", "snd"):
                yield Send("b", "t/0", 1_000_000)

        def receiver(proc):
            with proc.function("m", "rcv"):
                yield Compute(1.0)  # never posts the receive

        eng = Engine(Machine.named("n", 2), latency=RDV)
        eng.add_process("a", "n0", sender)
        eng.add_process("b", "n1", receiver)
        with pytest.raises(SimDeadlock):
            eng.run()

    def test_fifo_among_rendezvous_senders(self):
        got = []

        def s1(proc):
            with proc.function("m", "s1"):
                yield Send("b", "t/0", 1_000_000)

        def s2(proc):
            with proc.function("m", "s2"):
                yield Compute(0.5)
                yield Send("b", "t/0", 1_000_000)

        def receiver(proc):
            with proc.function("m", "rcv"):
                yield Compute(2.0)
                m1 = yield Recv("*", "t/0")
                m2 = yield Recv("*", "t/0")
                got.extend([m1.src, m2.src])

        eng = Engine(Machine.named("n", 3), latency=RDV)
        eng.add_process("a", "n0", s1)
        eng.add_process("c", "n1", s2)
        eng.add_process("b", "n2", receiver)
        eng.run()
        assert got == ["a", "c"]  # earliest-blocked sender matched first
