"""Engine tests: compute/IO timing, attribution, perturbation, scheduling."""

import pytest

from repro.simulator import (
    Activity,
    Compute,
    Engine,
    IoOp,
    Machine,
    ProgramError,
    SimulationError,
    TraceCollector,
)


def make_engine(n_nodes=1):
    return Engine(Machine.named("n", n_nodes))


class TestComputeAndIo:
    def test_compute_advances_time(self):
        eng = make_engine()

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(2.5)

        eng.add_process("p", "n0", prog)
        assert eng.run() == pytest.approx(2.5)

    def test_compute_emits_segment(self):
        eng = make_engine()
        tc = TraceCollector()
        eng.add_sink(tc)

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(1.0)

        eng.add_process("p", "n0", prog)
        eng.run()
        assert len(tc.segments) == 1
        seg = tc.segments[0]
        assert seg.activity is Activity.COMPUTE
        assert (seg.module, seg.function) == ("m.c", "f")
        assert seg.duration == pytest.approx(1.0)
        assert seg.process == "p" and seg.node == "n0"

    def test_io_segment(self):
        eng = make_engine()
        tc = TraceCollector()
        eng.add_sink(tc)

        def prog(proc):
            with proc.function("m.c", "f"):
                yield IoOp(0.7)

        eng.add_process("p", "n0", prog)
        eng.run()
        assert tc.total(Activity.IO) == pytest.approx(0.7)

    def test_exclusive_attribution_innermost(self):
        eng = make_engine()
        tc = TraceCollector()
        eng.add_sink(tc)

        def prog(proc):
            with proc.function("m.c", "outer"):
                yield Compute(1.0)
                with proc.function("m.c", "inner"):
                    yield Compute(2.0)
                yield Compute(0.5)

        eng.add_process("p", "n0", prog)
        eng.run()
        by_fn = tc.by_function(Activity.COMPUTE)
        assert by_fn[("m.c", "outer")] == pytest.approx(1.5)
        assert by_fn[("m.c", "inner")] == pytest.approx(2.0)

    def test_negative_compute_rejected(self):
        eng = make_engine()

        def prog(proc):
            yield Compute(-1.0)

        eng.add_process("p", "n0", prog)
        with pytest.raises(ProgramError):
            eng.run()

    def test_non_syscall_yield_rejected(self):
        eng = make_engine()

        def prog(proc):
            yield "not a syscall"

        eng.add_process("p", "n0", prog)
        with pytest.raises(ProgramError):
            eng.run()


class TestPerturbation:
    def test_overhead_stretches_compute(self):
        eng = make_engine()
        eng.add_perturbation_source(lambda p: 0.5)

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(2.0)

        eng.add_process("p", "n0", prog)
        assert eng.run() == pytest.approx(3.0)

    def test_overhead_does_not_stretch_io(self):
        eng = make_engine()
        eng.add_perturbation_source(lambda p: 1.0)

        def prog(proc):
            with proc.function("m.c", "f"):
                yield IoOp(1.0)

        eng.add_process("p", "n0", prog)
        assert eng.run() == pytest.approx(1.0)

    def test_multiple_sources_sum(self):
        eng = make_engine()
        eng.add_perturbation_source(lambda p: 0.1)
        eng.add_perturbation_source(lambda p: 0.2)
        assert eng.perturbation("p") == pytest.approx(0.3)


class TestScheduling:
    def test_schedule_in_past_rejected(self):
        eng = make_engine()

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p", "n0", prog)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule(0.5, lambda: None)

    def test_periodic_stops_after_finish(self):
        eng = make_engine()
        ticks = []

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(5.0)

        eng.add_process("p", "n0", prog)
        eng.schedule_periodic(1.0, lambda e: ticks.append(e.now))
        eng.run()
        # one tick per second during the run; none rescheduled after finish
        assert 4 <= len(ticks) <= 7

    def test_periodic_rejects_nonpositive(self):
        eng = make_engine()
        with pytest.raises(SimulationError):
            eng.schedule_periodic(0.0, lambda e: None)

    def test_on_finish_called_once(self):
        eng = make_engine()
        calls = []

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p", "n0", prog)
        eng.on_finish(lambda e: calls.append(e.now))
        eng.run()
        assert calls == [pytest.approx(1.0)]

    def test_stop_aborts_early(self):
        eng = make_engine()

        def prog(proc):
            with proc.function("m.c", "f"):
                for _ in range(100):
                    yield Compute(1.0)

        eng.add_process("p", "n0", prog)
        eng.schedule(5.0, eng.stop)
        t = eng.run()
        assert t <= 6.0

    def test_max_time_guard(self):
        eng = make_engine()

        def prog(proc):
            with proc.function("m.c", "f"):
                for _ in range(100):
                    yield Compute(1.0)

        eng.add_process("p", "n0", prog)
        with pytest.raises(SimulationError):
            eng.run(max_time=10.0)

    def test_duplicate_process_name(self):
        eng = make_engine()

        def prog(proc):
            yield Compute(1.0)

        eng.add_process("p", "n0", prog)
        with pytest.raises(ProgramError):
            eng.add_process("p", "n0", prog)

    def test_in_progress_reports_running_compute(self):
        eng = make_engine()
        seen = []

        def prog(proc):
            with proc.function("m.c", "f"):
                yield Compute(10.0)

        def check(e):
            segs = list(e.in_progress())
            if segs:
                seen.append((segs[0].activity, segs[0].duration))

        eng.add_process("p", "n0", prog)
        eng.schedule(4.0, lambda: check(eng))
        eng.run()
        assert seen and seen[0][0] is Activity.COMPUTE
        assert seen[0][1] == pytest.approx(4.0)
