"""Fast/legacy event-loop equivalence (ISSUE 8 tentpole + satellite 4).

Every test builds the *same* simulated program twice and runs it once
under ``loop="legacy"`` and once under ``loop="fast"``, then asserts the
observable outputs are identical: the full per-sink ``TimeSegment``
stream (every field, including ``stack`` equality and interned ``parts``
identity), finish times, event and segment counters, and — for the
failure cases — the ``SimDeadlock``/``SimTimeout`` diagnostics.
"""

import random

import pytest

from repro.simulator import (
    Barrier,
    Compute,
    Engine,
    IoOp,
    Irecv,
    LatencyModel,
    Machine,
    Recv,
    Send,
    SimDeadlock,
    SimTimeout,
    TraceCollector,
    WaitReq,
)
from repro.simulator.process import Isend


def seg_key(s):
    return (
        s.start,
        s.duration,
        s.activity,
        s.process,
        s.node,
        s.module,
        s.function,
        s.tag,
        s.stack,
        id(s.parts),  # interned parts must be the *same* dict either way
    )


def run_both(build, run=lambda eng: eng.run(), sink=True):
    """Build + run under each loop; returns (engines, collectors, results)."""
    out = []
    for loop in ("legacy", "fast"):
        eng = build()
        col = TraceCollector()
        if sink:
            eng.add_sink(col)
        result = run(eng, loop) if run.__code__.co_argcount == 2 else run(eng)
        out.append((eng, col, result))
    return out


def assert_identical(out):
    (e1, c1, r1), (e2, c2, r2) = out
    assert r1 == r2
    assert e1.finished_at == e2.finished_at
    assert e1.events_processed == e2.events_processed
    assert e1.segments_emitted == e2.segments_emitted
    assert len(c1.segments) == len(c2.segments)
    for a, b in zip(c1.segments, c2.segments):
        assert seg_key(a) == seg_key(b)


def ring_builder(n=4, iters=8, seed=0, perturb=False, latency=None):
    """A seeded random ring program: compute, eager sends, blocking or
    non-blocking receives, occasional barriers and I/O."""

    def build():
        rng = random.Random(seed)
        # shared per-iteration script so every process agrees on barriers
        script = [
            (
                rng.uniform(0.001, 0.2),  # compute seconds
                rng.choice(["recv", "irecv"]),
                rng.random() < 0.25,  # barrier this iteration?
                rng.uniform(0, 2000),  # message size
            )
            for _ in range(iters)
        ]
        eng = Engine(Machine.named("node", n), latency or LatencyModel())
        if perturb:
            eng.add_perturbation_source(lambda name: 0.25 if name == "p0" else 0.0)

        def prog(rank):
            def p(proc):
                up, down = f"p{(rank + 1) % n}", f"p{(rank - 1) % n}"
                with proc.function("oned.f", "main"):
                    for seconds, mode, barrier, size in script:
                        with proc.function("sweep.f", "sweep1d"):
                            yield Compute(seconds * (1 + rank % 3))
                        with proc.function("exchng1.f", "exchng1"):
                            yield Send(up, "1/0", size)
                            if mode == "recv":
                                yield Recv(down, "1/0")
                            else:
                                req = yield Irecv(down, "1/0")
                                yield Compute(0.003)
                                yield WaitReq(req)
                        if barrier:
                            yield Barrier()
                    yield IoOp(0.01 * (rank + 1))
            return p

        for i in range(n):
            eng.add_process(f"p{i}", f"node{i}", prog(i))
        return eng

    return build


class TestSeededPrograms:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_ring_identical(self, seed):
        assert_identical(run_both(ring_builder(seed=seed), lambda e, l: e.run(loop=l)))

    @pytest.mark.parametrize("seed", range(3))
    def test_random_ring_with_perturbation(self, seed):
        assert_identical(
            run_both(
                ring_builder(seed=seed, perturb=True), lambda e, l: e.run(loop=l)
            )
        )

    def test_rendezvous_protocol(self):
        # eager_threshold below the message sizes forces rendezvous: the
        # blocking send parks until the receiver posts a matching receive
        def build():
            eng = Engine(Machine.named("node", 2), LatencyModel(eager_threshold=100.0))

            def sender(proc):
                with proc.function("a.f", "send"):
                    yield Compute(0.5)
                    yield Send("p1", "big/0", 4096)  # parks: no receive yet
                    yield Compute(0.1)
                    yield Send("p1", "big2/0", 2048)  # matched by posted irecv
                    yield Compute(0.1)

            def receiver(proc):
                with proc.function("b.f", "recv"):
                    yield Compute(2.0)  # sender waits in rendezvous meanwhile
                    yield Recv("p0", "big/0")
                    req = yield Irecv("p0", "big2/0")
                    yield Compute(1.0)
                    yield WaitReq(req)

            eng.add_process("p0", "node0", sender)
            eng.add_process("p1", "node1", receiver)
            return eng

        assert_identical(run_both(build, lambda e, l: e.run(loop=l)))

    def test_isend_wait(self):
        def build():
            eng = Engine(Machine.named("node", 2))

            def sender(proc):
                with proc.function("a.f", "send"):
                    req = yield Isend("p1", "t/0", 64)
                    yield WaitReq(req)
                    yield Compute(0.5)

            def receiver(proc):
                with proc.function("b.f", "recv"):
                    yield Recv("p0", "t/0")

            eng.add_process("p0", "node0", sender)
            eng.add_process("p1", "node1", receiver)
            return eng

        assert_identical(run_both(build, lambda e, l: e.run(loop=l)))

    def test_message_filters(self):
        def build():
            eng = ring_builder(seed=2)()
            # deterministic drop/duplicate/delay by message send time
            def filt(msg):
                k = int(msg.send_time * 1000) % 3
                if k == 0:
                    return [0.0, 0.5]  # duplicate, one delayed
                if k == 1:
                    return [0.1]
                return [0.0]
            eng.add_message_filter(filt)
            return eng

        # a dropped/duplicated stream can deadlock identically; accept
        # either identical success or identical diagnostics
        results = []
        for loop in ("legacy", "fast"):
            eng = build()
            col = TraceCollector()
            eng.add_sink(col)
            try:
                r = ("ok", eng.run(loop=loop, max_time=1e4))
            except (SimDeadlock, SimTimeout) as exc:
                r = (type(exc).__name__, str(exc))
            results.append((r, [seg_key(s) for s in col.segments], eng.events_processed))
        assert results[0] == results[1]


class TestFaultEquivalence:
    def test_crash_policy_record(self):
        def build():
            eng = Engine(Machine.named("node", 3), crash_policy="record")

            def crasher(proc):
                with proc.function("m.f", "work"):
                    yield Compute(1.0)
                    raise ValueError("injected")

            def worker(rank):
                def p(proc):
                    with proc.function("m.f", "work"):
                        for _ in range(4):
                            yield Compute(0.5)
                return p

            eng.add_process("p0", "node0", crasher)
            eng.add_process("p1", "node1", worker(1))
            eng.add_process("p2", "node2", worker(2))
            return eng

        out = run_both(build, lambda e, l: e.run(loop=l))
        assert_identical(out)
        (e1, _, _), (e2, _, _) = out
        assert [p.name for p in e1.crashed()] == [p.name for p in e2.crashed()] == ["p0"]

    def test_injected_crash_and_hang_under_watchdog(self):
        def run(eng, loop):
            eng.schedule(1.0, lambda: eng.crash_process("p1"))
            eng.schedule(2.0, lambda: eng.hang_process("p2"))
            eng.schedule_periodic(5.0, lambda e: None)  # keeps time advancing
            with pytest.raises(SimTimeout) as info:
                eng.run(max_time=50.0, loop=loop)
            return (str(info.value), info.value.budget, info.value.blocked,
                    info.value.crashed)

        def build():
            eng = Engine(Machine.named("node", 4), crash_policy="record")

            def prog(rank):
                def p(proc):
                    up, down = f"p{(rank + 1) % 4}", f"p{(rank - 1) % 4}"
                    with proc.function("m.f", "loop"):
                        for _ in range(1000):
                            yield Compute(0.01)
                            yield Send(up, "1/0", 10)
                            yield Recv(down, "1/0")
                return p

            for i in range(4):
                eng.add_process(f"p{i}", f"node{i}", prog(i))
            return eng

        out = run_both(build, run)
        assert_identical(out)

    def test_deadlock_diagnostics(self):
        def build():
            eng = Engine(Machine.named("node", 2))

            def p0(proc):
                with proc.function("m.f", "stuck"):
                    yield Recv("p1", "never/0")

            def p1(proc):
                with proc.function("m.f", "done"):
                    yield Compute(1.0)

            eng.add_process("p0", "node0", p0)
            eng.add_process("p1", "node1", p1)
            return eng

        def run(eng, loop):
            with pytest.raises(SimDeadlock) as info:
                eng.run(loop=loop)
            return (str(info.value), info.value.blocked, info.value.crashed)

        assert_identical(run_both(build, run))


class TestObservationPoints:
    def test_callback_sees_flushed_segments(self):
        """A user-scheduled callback must observe exactly the segments the
        legacy loop would have delivered by that instant."""
        observed = {}

        def run(eng, loop):
            col = eng._sinks[0]
            snap = []
            for t in (0.5, 1.5, 2.5):
                eng.schedule(t, lambda t=t: snap.append((t, len(col.segments),
                                                         eng.segments_emitted,
                                                         eng.events_processed)))
            r = eng.run(loop=loop)
            observed[loop] = snap
            return r

        out = run_both(ring_builder(seed=3), run)
        assert_identical(out)
        assert observed["legacy"] == observed["fast"]

    def test_callback_sees_in_progress(self):
        observed = {}

        def run(eng, loop):
            snap = []
            for t in (0.25, 1.25):
                eng.schedule(
                    t, lambda: snap.append(sorted(seg_key(s)[:9] for s in eng.in_progress()))
                )
            r = eng.run(loop=loop)
            observed[loop] = snap
            return r

        out = run_both(ring_builder(seed=4), run)
        assert_identical(out)
        assert observed["legacy"] == observed["fast"]

    def test_stop_mid_run(self):
        def run(eng, loop):
            eng.schedule(1.0, eng.stop)
            return eng.run(loop=loop)

        out = run_both(ring_builder(seed=5), run)
        (e1, c1, r1), (e2, c2, r2) = out
        assert r1 == r2
        assert e1.events_processed == e2.events_processed
        assert [seg_key(s) for s in c1.segments] == [seg_key(s) for s in c2.segments]

    def test_on_finish_sees_full_stream(self):
        counts = {}

        def run(eng, loop):
            col = eng._sinks[0]
            eng.on_finish(lambda e: counts.setdefault(loop, len(col.segments)))
            return eng.run(loop=loop)

        out = run_both(ring_builder(seed=0), run)
        assert_identical(out)
        assert counts["legacy"] == counts["fast"] == len(out[0][1].segments)


class TestCrossModeResume:
    def test_fast_timeout_resumes_under_legacy(self):
        build = ring_builder(seed=1)
        # reference: one unbudgeted legacy run
        ref_eng = build()
        ref_col = TraceCollector()
        ref_eng.add_sink(ref_col)
        ref_eng.run(loop="legacy")

        eng = build()
        col = TraceCollector()
        eng.add_sink(col)
        budget = ref_eng.finished_at / 3
        loops = ("fast", "legacy", "fast", "legacy")
        i = 0
        while True:
            try:
                eng.run(max_time=budget, loop=loops[i % 4])
                break
            except SimTimeout:
                i += 1
                budget *= 2
        assert eng.finished_at == ref_eng.finished_at
        assert [seg_key(s) for s in col.segments] == [seg_key(s) for s in ref_col.segments]

    def test_unknown_loop_rejected(self):
        from repro.simulator import SimulationError

        eng = ring_builder(n=2, iters=1)()
        with pytest.raises(SimulationError):
            eng.run(loop="warp")

    def test_default_loop_is_fast(self):
        eng = ring_builder(n=2, iters=1)()
        assert eng.default_loop == "fast"
        eng.run()  # auto resolves to the fast loop
        assert eng.emit_batches >= 0  # counter exists and is wired
