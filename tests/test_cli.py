"""Tests for the command-line interface (driving main() directly)."""

import pytest

from repro.cli import main


def run_cli(*argv):
    return main([str(a) for a in argv])


@pytest.fixture(scope="module")
def store_with_runs(tmp_path_factory):
    store = tmp_path_factory.mktemp("clistore")
    assert run_cli(
        "diagnose", "tester", "--iterations", 60,
        "--store", store, "--run-id", "t-base",
    ) == 0
    assert run_cli(
        "diagnose", "poisson", "--app-version", "A", "--iterations", 120,
        "--store", store, "--run-id", "pa-base",
    ) == 0
    assert run_cli(
        "diagnose", "poisson", "--app-version", "B", "--iterations", 120,
        "--store", store, "--run-id", "pb-base",
    ) == 0
    return store


class TestDiagnose:
    def test_summary_printed(self, store_with_runs, capsys):
        run_cli("report", "pa-base", "--store", store_with_runs)
        out = capsys.readouterr().out
        assert "pairs tested" in out
        assert "poisson" in out

    def test_threshold_override(self, tmp_path, capsys):
        assert run_cli(
            "diagnose", "tester", "--iterations", 40, "--store", tmp_path,
            "--run-id", "x", "--threshold", "CPUbound=0.5", "--stop-when-done",
        ) == 0
        out = capsys.readouterr().out
        assert "bottlenecks" in out

    def test_unknown_app_fails(self):
        with pytest.raises(SystemExit):
            run_cli("diagnose", "fortnite")

    def test_bad_threshold_fails(self):
        with pytest.raises(SystemExit):
            run_cli("diagnose", "tester", "--threshold", "oops")

    def test_duplicate_run_id_errors(self, store_with_runs, capsys):
        code = run_cli(
            "diagnose", "tester", "--iterations", 40,
            "--store", store_with_runs, "--run-id", "t-base",
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCampaign:
    def test_directed_pipeline(self, tmp_path, capsys):
        assert run_cli(
            "campaign", "tester", "--iterations", 40, "--runs", 2,
            "--directed", "--store", tmp_path / "runs", "--name", "camp",
        ) == 0
        out = capsys.readouterr().out
        assert "stage baseline: 2 runs" in out
        assert "harvested directives" in out
        assert "camp-directed-001" in out
        from repro.storage import ExperimentStore

        assert len(ExperimentStore(tmp_path / "runs")) == 4

    def test_workers_flag(self, tmp_path, capsys):
        assert run_cli(
            "campaign", "tester", "--iterations", 40, "--runs", 2,
            "--workers", 2,
        ) == 0
        assert "PoolExecutor(workers=2)" in capsys.readouterr().out

    def test_unknown_app_fails(self):
        with pytest.raises(SystemExit):
            run_cli("campaign", "fortnite")


class TestExtractCombineReport:
    def test_extract_to_file(self, store_with_runs, tmp_path):
        out = tmp_path / "a.directives"
        assert run_cli("extract", "pa-base", "--store", store_with_runs, "--out", out) == 0
        text = out.read_text()
        assert "priority high" in text
        assert "prune" in text

    def test_extract_postmortem(self, store_with_runs, tmp_path):
        out = tmp_path / "pm.directives"
        assert run_cli(
            "extract", "pa-base", "--store", store_with_runs,
            "--out", out, "--postmortem",
        ) == 0
        assert "priority high" in out.read_text()

    def test_extract_stdout(self, store_with_runs, capsys):
        assert run_cli("extract", "pa-base", "--store", store_with_runs,
                       "--no-pair-prunes") == 0
        out = capsys.readouterr().out
        assert "priority" in out
        assert "prunepair" not in out

    def test_directed_diagnosis_via_cli(self, store_with_runs, tmp_path, capsys):
        directives = tmp_path / "a.directives"
        run_cli("extract", "pa-base", "--store", store_with_runs, "--out", directives)
        capsys.readouterr()
        assert run_cli(
            "diagnose", "poisson", "--app-version", "A", "--iterations", 120,
            "--store", store_with_runs, "--run-id", "pa-directed",
            "--directives", directives, "--stop-when-done",
        ) == 0
        assert "pa-directed" in capsys.readouterr().out

    def test_combine_union(self, store_with_runs, tmp_path, capsys):
        a = tmp_path / "a.d"
        b = tmp_path / "b.d"
        run_cli("extract", "pa-base", "--store", store_with_runs, "--out", a)
        run_cli("extract", "pb-base", "--store", store_with_runs, "--out", b)
        out = tmp_path / "ab.d"
        assert run_cli("combine", a, b, "--mode", "union", "--out", out) == 0
        assert "priority" in out.read_text()

    def test_report_shg_and_profile(self, store_with_runs, capsys):
        assert run_cli(
            "report", "pa-base", "--store", store_with_runs,
            "--shg", "--true-only", "--depth", 2, "--profile", "--hierarchies",
        ) == 0
        out = capsys.readouterr().out
        assert "[T]" in out
        assert "Profile" in out
        assert "Code" in out

    def test_report_missing_run(self, store_with_runs, capsys):
        assert run_cli("report", "ghost", "--store", store_with_runs) == 2


class TestListAndAutomap:
    def test_list(self, store_with_runs, capsys):
        assert run_cli("list", "--store", store_with_runs) == 0
        out = capsys.readouterr().out
        assert "pa-base" in out and "t-base" in out

    def test_list_filter(self, store_with_runs, capsys):
        assert run_cli("list", "--store", store_with_runs, "--app", "tester") == 0
        out = capsys.readouterr().out
        assert "t-base" in out and "pa-base" not in out

    def test_list_empty(self, tmp_path, capsys):
        assert run_cli("list", "--store", tmp_path) == 0
        assert "no stored runs" in capsys.readouterr().out

    def test_automap(self, store_with_runs, tmp_path, capsys):
        out = tmp_path / "ab.maps"
        assert run_cli(
            "automap", "pa-base", "pb-base", "--store", store_with_runs, "--out", out
        ) == 0
        text = out.read_text()
        assert "map /Code/oned.f /Code/onednb.f" in text

    def test_automap_stdout(self, store_with_runs, capsys):
        assert run_cli("automap", "pa-base", "pb-base", "--store", store_with_runs) == 0
        assert "map /Machine/node00 /Machine/node04" in capsys.readouterr().out


class TestCompareAndHistory:
    def test_compare(self, store_with_runs, capsys):
        assert run_cli("compare", "pa-base", "pb-base", "--store", store_with_runs) == 0
        out = capsys.readouterr().out
        assert "Structural differences" in out
        assert "Bottleneck conclusions" in out

    def test_compare_with_maps(self, store_with_runs, tmp_path, capsys):
        maps = tmp_path / "ab.maps"
        run_cli("automap", "pa-base", "pb-base", "--store", store_with_runs,
                "--out", maps)
        capsys.readouterr()
        assert run_cli("compare", "pa-base", "pb-base", "--store", store_with_runs,
                       "--maps", maps) == 0
        assert "similarity" in capsys.readouterr().out

    def test_history(self, store_with_runs, capsys):
        assert run_cli("history", "/Code/diff.f/diff1d", "--store", store_with_runs,
                       "--activity", "compute", "--app", "poisson") == 0
        out = capsys.readouterr().out
        assert "pa-base" in out and "trend" in out

    def test_history_empty(self, tmp_path, capsys):
        assert run_cli("history", "/Code/x.c", "--store", tmp_path) == 0
        assert "no stored runs" in capsys.readouterr().out


class TestFigures:
    @pytest.mark.parametrize("number", [1, 2, 3])
    def test_figures_render(self, number, capsys):
        assert run_cli("figure", number) == 0
        out = capsys.readouterr().out
        assert f"Figure {number}" in out

    def test_figure_contents(self, capsys):
        run_cli("figure", 1)
        assert "verifya" in capsys.readouterr().out
        run_cli("figure", 3)
        assert "Mappings Used" in capsys.readouterr().out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            run_cli("figure", 9)


class TestErrorExitCodes:
    """Satellite: one-line stderr messages with distinct exit codes."""

    @pytest.fixture()
    def crash_plan(self, tmp_path):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 1, "crash_at": {"Poisson:2": 12.0}, "max_virtual_time": 60.0,
        }))
        return path

    def test_simulation_error_exit_4(self, crash_plan, capsys):
        code = run_cli("diagnose", "poisson", "--iterations", 40,
                       "--faults", crash_plan)
        assert code == 4
        err = capsys.readouterr().err
        assert err.startswith("simulation failed:")
        assert "Traceback" not in err
        assert "--on-failure degrade" in err  # the recovery hint

    def test_on_failure_degrade_exit_0(self, crash_plan, capsys):
        code = run_cli("diagnose", "poisson", "--iterations", 40,
                       "--faults", crash_plan, "--on-failure", "degrade")
        assert code == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out

    def test_debug_reraises(self, crash_plan):
        from repro.simulator.errors import SimulationError

        with pytest.raises(SimulationError):
            run_cli("--debug", "diagnose", "poisson", "--iterations", 40,
                    "--faults", crash_plan)

    def test_store_corruption_exit_3(self, tmp_path, capsys):
        import json

        store = tmp_path / "runs"
        assert run_cli("diagnose", "tester", "--iterations", 40,
                       "--store", store, "--run-id", "x1") == 0
        path = store / "x1.json"
        data = json.loads(path.read_text())
        data["record"]["pairs_tested"] = 9999
        path.write_text(json.dumps(data))
        capsys.readouterr()
        # The summary-only report answers from the index and never touches
        # the tampered record file; corruption surfaces on the record path.
        assert run_cli("report", "x1", "--store", store) == 0
        code = run_cli("report", "x1", "--store", store, "--profile")
        assert code == 3
        assert "corruption" in capsys.readouterr().err
        assert (store / "quarantine" / "x1.json").exists()

    def test_campaign_error_exit_5(self, capsys):
        code = run_cli("campaign", "tester", "--resume")
        assert code == 5
        assert "needs a journal" in capsys.readouterr().err

    def test_missing_fault_plan_exit_2(self, capsys):
        code = run_cli("diagnose", "tester", "--faults", "/nonexistent/plan.json")
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCampaignCli:
    def test_journal_and_resume_flags(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        assert run_cli(
            "campaign", "tester", "--iterations", 60, "--runs", 2,
            "--name", "cj", "--journal", journal, "--store", tmp_path / "runs",
        ) == 0
        assert journal.exists()
        capsys.readouterr()
        assert run_cli(
            "campaign", "tester", "--iterations", 60, "--runs", 2,
            "--name", "cj", "--journal", journal, "--resume",
            "--store", tmp_path / "runs",
        ) == 0
        out = capsys.readouterr().out
        assert "skipped" in out


class TestObservability:
    def test_diagnose_trace_into_store(self, tmp_path, capsys):
        assert run_cli(
            "diagnose", "tester", "--iterations", 40, "--store", tmp_path,
            "--run-id", "traced", "--trace",
        ) == 0
        path = tmp_path / "traces" / "traced.jsonl"
        assert path.is_file()
        assert "trace written" in capsys.readouterr().out
        assert run_cli("trace", "traced", "--store", tmp_path) == 0
        out = capsys.readouterr().out
        assert "Trace timeline" in out
        assert "run-start" in out

    def test_diagnose_trace_explicit_path(self, tmp_path, capsys):
        trace_file = tmp_path / "out.jsonl"
        assert run_cli(
            "diagnose", "tester", "--iterations", 40,
            "--trace", trace_file,
        ) == 0
        assert trace_file.is_file()
        capsys.readouterr()
        assert run_cli("trace", trace_file, "--verbose") == 0
        assert "node-queued" in capsys.readouterr().out

    def test_trace_true_needs_store(self):
        with pytest.raises(SystemExit):
            run_cli("diagnose", "tester", "--iterations", 40, "--trace")

    def test_trace_unknown_run(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli("trace", "nonesuch", "--store", tmp_path)

    def test_trace_corrupt_file_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert run_cli("trace", bad) == 2
        assert "error" in capsys.readouterr().err

    def test_report_metrics_table(self, store_with_runs, capsys):
        assert run_cli(
            "report", "pa-base", "--store", store_with_runs, "--metrics",
        ) == 0
        out = capsys.readouterr().out
        assert "Run metrics" in out
        assert "engine_events" in out

    def test_report_metrics_json(self, store_with_runs, capsys):
        import json as _json

        assert run_cli(
            "report", "pa-base", "--store", store_with_runs,
            "--metrics", "--metrics-format", "json",
        ) == 0
        tail = capsys.readouterr().out.split("\n{", 1)
        metrics = _json.loads("{" + tail[1])
        assert metrics["pairs_instrumented"] > 0

    def test_report_metrics_prometheus(self, store_with_runs, capsys):
        assert run_cli(
            "report", "pa-base", "--store", store_with_runs,
            "--metrics", "--metrics-format", "prom",
        ) == 0
        out = capsys.readouterr().out
        assert '# TYPE repro_run_engine_events gauge' in out
        assert 'run_id="pa-base"' in out


class TestSummaryFastPath:
    """Summary-only CLI paths must not deserialize any record file."""

    @pytest.fixture()
    def count_parses(self, monkeypatch):
        from repro.storage import file_backend

        calls = []
        original = file_backend.read_record_payload

        def counting(path):
            calls.append(path.name)
            return original(path)

        monkeypatch.setattr(file_backend, "read_record_payload", counting)
        return calls

    def test_report_parses_no_record(self, store_with_runs, count_parses, capsys):
        assert run_cli("report", "pa-base", "--store", store_with_runs) == 0
        assert count_parses == []
        out = capsys.readouterr().out
        assert "pairs tested" in out and "poisson" in out

    def test_report_profile_parses_the_record(self, store_with_runs, count_parses):
        assert run_cli(
            "report", "pa-base", "--store", store_with_runs, "--profile",
        ) == 0
        assert count_parses == ["pa-base.json"]

    def test_list_parses_no_record(self, store_with_runs, count_parses, capsys):
        assert run_cli("list", "--store", store_with_runs) == 0
        assert count_parses == []
        assert "pa-base" in capsys.readouterr().out

    def test_trace_header_without_record_parse(self, tmp_path, count_parses, capsys):
        count_parses.clear()
        assert run_cli(
            "diagnose", "tester", "--iterations", 40, "--store", tmp_path,
            "--run-id", "traced", "--trace",
        ) == 0
        capsys.readouterr()
        count_parses.clear()
        assert run_cli("trace", "traced", "--store", tmp_path) == 0
        out = capsys.readouterr().out
        assert "run traced: tester v1, status complete" in out
        assert count_parses == []
