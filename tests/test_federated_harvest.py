"""Federated harvest: directives merged deterministically across stores.

A list of stores (or store paths) harvests each store independently and
unions the directive sets; the result must not depend on store order or
backend, so pooled team archives behave like one big store.
"""

import pytest

from repro import diagnose, harvest
from repro.apps.synthetic import make_pingpong
from repro.core import union_directives
from repro.facade import resolve_history
from repro.storage import ExperimentStore, StoreError

FAST = dict(min_interval=5.0, check_period=0.5, insertion_latency=0.2,
            cost_limit=50.0)


@pytest.fixture(scope="module")
def records():
    return [
        diagnose(make_pingpong(iterations=60), run_id=f"fed-{i}", **FAST)
        for i in range(2)
    ]


@pytest.fixture()
def two_stores(tmp_path, records):
    a = ExperimentStore(tmp_path / "site-a")
    b = ExperimentStore(tmp_path / "site-b", backend="sqlite")
    a.save(records[0])
    b.save(records[1])
    return a, b


class TestFederatedHarvest:
    def test_union_of_member_harvests(self, two_stores):
        a, b = two_stores
        federated = harvest([a, b], include_thresholds=True)
        expected = union_directives(
            harvest(a, include_thresholds=True),
            harvest(b, include_thresholds=True),
        )
        assert federated.to_text() == expected.to_text()
        assert len(federated) > 0

    def test_store_order_is_irrelevant(self, two_stores):
        a, b = two_stores
        assert harvest([a, b]).to_text() == harvest([b, a]).to_text()

    def test_paths_and_stores_mix(self, two_stores):
        a, b = two_stores
        by_path = harvest([str(a.root), b])
        assert by_path.to_text() == harvest([a, b]).to_text()

    def test_single_member_equals_plain_harvest(self, two_stores):
        a, _b = two_stores
        assert harvest([a]).to_text() == harvest(a).to_text()

    def test_deterministic_across_repeat_calls(self, two_stores):
        a, b = two_stores
        first = harvest([a, b], include_thresholds=True).to_text()
        again = harvest([a, b], include_thresholds=True).to_text()
        assert first == again

    def test_app_filter_applies_per_store(self, two_stores):
        a, b = two_stores
        # no matching history anywhere: only the environment-rule prunes
        # remain, exactly as a single-store harvest would produce
        federated = harvest([a, b], app="ghost")
        assert federated.to_text() == harvest(a, app="ghost").to_text()
        assert federated.priorities == []
        assert federated.thresholds == []

    def test_non_records_still_rejected(self):
        with pytest.raises(TypeError):
            harvest([3.14])

    def test_string_members_are_store_paths(self):
        # A list of strings is a federated harvest; a member path that is
        # not a store on disk fails soft (warned, skipped) and a list
        # whose members all fail raises StoreError.
        with pytest.raises(StoreError, match="every member store failed"):
            with pytest.warns(Warning, match="does not exist"):
                harvest(["not a store, not a record"])


class TestFailSoftFederation:
    """History improves a diagnosis but must never abort one: a sick
    member is skipped with a structured HarvestWarning unless the caller
    opted into strict=True."""

    def test_failed_member_skipped_with_warning(self, tmp_path, two_stores):
        from repro.facade import HarvestWarning

        a, b = two_stores
        dead = tmp_path / "site-dead"
        with pytest.warns(HarvestWarning) as caught:
            federated = harvest([a, str(dead), b], include_thresholds=True)
        expected = harvest([a, b], include_thresholds=True)
        assert federated.to_text() == expected.to_text()
        warning = caught[0].message
        assert warning.member == str(dead)
        assert "does not exist" in str(warning.reason)

    def test_strict_raises_on_any_member_failure(self, tmp_path, two_stores):
        a, b = two_stores
        with pytest.raises(StoreError):
            harvest([a, str(tmp_path / "site-dead"), b], strict=True)

    def test_all_members_failed_raises(self, tmp_path):
        with pytest.raises(StoreError, match="every member store failed"):
            with pytest.warns(Warning):
                harvest([str(tmp_path / "gone-a"), str(tmp_path / "gone-b")])

    def test_resolve_history_skips_failed_sources(self, tmp_path, two_stores):
        a, b = two_stores
        with pytest.warns(Warning):
            merged = resolve_history([a, str(tmp_path / "gone"), b])
        expected = resolve_history([a, b])
        assert merged.to_text() == expected.to_text()

    def test_resolve_history_strict_raises(self, tmp_path, two_stores):
        a, _b = two_stores
        with pytest.raises((StoreError, OSError)):
            resolve_history([a, str(tmp_path / "gone")], strict=True)


class TestResolveHistoryLists:
    def test_store_plus_directive_file(self, tmp_path, two_stores):
        a, b = two_stores
        path = tmp_path / "extra.directives"
        path.write_text(harvest(b).to_text())
        merged = resolve_history([a, path])
        expected = union_directives(harvest(a), harvest(b))
        assert merged.to_text() == expected.to_text()

    def test_empty_list_is_undirected(self):
        assert resolve_history([]) is None

    def test_record_lists_still_extract_directly(self, records):
        merged = resolve_history(list(records))
        assert merged is not None
        assert len(merged) > 0


class TestFederatedCLI:
    def test_repeatable_directives_flag(self, tmp_path, two_stores, capsys):
        from repro.cli import main

        a, b = two_stores
        f1 = tmp_path / "a.directives"
        f2 = tmp_path / "b.directives"
        f1.write_text(harvest(a).to_text())
        f2.write_text(harvest(b).to_text())
        assert main([
            "diagnose", "tester", "--iterations", "5",
            "--directives", str(f1), "--directives", str(f2),
        ]) == 0
        assert "run id" in capsys.readouterr().out

    def test_directives_flag_accepts_store_dirs(self, two_stores, capsys):
        from repro.cli import main

        a, b = two_stores
        assert main([
            "diagnose", "tester", "--iterations", "5",
            "--directives", str(a.root), "--directives", str(b.root),
        ]) == 0
        assert "run id" in capsys.readouterr().out
