"""Fault injection: plans, the injector, watchdogs, and determinism."""

import pytest

from repro.apps.poisson import PoissonConfig, build_poisson
from repro.core import SearchConfig, run_diagnosis
from repro.faults import FaultInjector, FaultPlan, FaultPlanError, apply_faults
from repro.obs import deterministic_metrics
from repro.simulator import (
    Compute,
    Engine,
    LatencyModel,
    Machine,
    ProcState,
    Recv,
    Send,
    SimDeadlock,
    SimTimeout,
    SimulationError,
    TraceCollector,
)

LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)
FAST = SearchConfig(min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0)


def pingpong(n_rounds=5, payload=10):
    def sender(proc):
        with proc.function("pp.c", "driver"):
            for i in range(n_rounds):
                yield Send("q", f"t/{i}", size=payload)
                yield Compute(1.0)

    def receiver(proc):
        with proc.function("pp.c", "driver"):
            for i in range(n_rounds):
                yield Recv("p", f"t/{i}")
                yield Compute(1.0)

    eng = Engine(Machine.named("n", 2), latency=LAT, crash_policy="record")
    eng.add_process("p", "n0", sender)
    eng.add_process("q", "n1", receiver)
    return eng


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(drop=1.5)
        with pytest.raises(FaultPlanError):
            FaultPlan(delay_seconds=-1)
        with pytest.raises(FaultPlanError):
            FaultPlan(slow_nodes={"n0": 0.5})
        with pytest.raises(FaultPlanError):
            FaultPlan(crash_at={"p": -1.0})
        with pytest.raises(FaultPlanError):
            FaultPlan(max_events=0)
        with pytest.raises(FaultPlanError):
            FaultPlan(max_virtual_time=0.0)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=7, drop=0.1, slow_nodes={"n0": 2.0},
                         crash_at={"p": 3.0}, max_events=500)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError, match="unknown fault plan field"):
            FaultPlan.from_dict({"seed": 1, "typo": True})

    def test_empty_plan(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan(drop=0.1).is_empty()

    def test_describe_mentions_faults(self):
        text = FaultPlan(drop=0.25, crash_at={"p": 3.0}).describe()
        assert "drop=0.25" in text and "crash p@3" in text


class TestInjector:
    def test_unknown_process_rejected(self):
        eng = pingpong()
        with pytest.raises(FaultPlanError, match="unknown process"):
            apply_faults(eng, FaultPlan(crash_at={"ghost": 1.0}))

    def test_double_attach_rejected(self):
        inj = FaultInjector(FaultPlan(drop=0.5))
        inj.attach(pingpong())
        with pytest.raises(FaultPlanError, match="already attached"):
            inj.attach(pingpong())

    def test_drop_all_messages_deadlocks_with_diagnostics(self):
        eng = pingpong()
        inj = apply_faults(eng, FaultPlan(seed=1, drop=1.0))
        with pytest.raises(SimDeadlock) as info:
            eng.run()
        assert any(kind == "drop" for _, kind, _ in inj.injected)
        blocked = info.value.blocked
        assert any(b["process"] == "q" and b["kind"] == "recv" for b in blocked)
        # the message names the stuck function and tag
        assert "pp.c:driver" in str(info.value)
        assert "tag" in str(info.value)

    def test_delay_stretches_execution(self):
        base = pingpong()
        t_clean = base.run()
        eng = pingpong()
        apply_faults(eng, FaultPlan(seed=2, delay=1.0, delay_seconds=2.0))
        t_delayed = eng.run()
        # Later arrivals overlap the receiver's compute, so the run
        # stretches by at least the first delivery's extra latency.
        assert t_delayed >= t_clean + 2.0

    def test_duplicates_are_harmless_extra_arrivals(self):
        # Duplicated messages arrive late into the void (no matching recv);
        # the program still completes in order.
        eng = pingpong()
        inj = apply_faults(eng, FaultPlan(seed=3, duplicate=1.0, delay_seconds=0.5))
        eng.run()
        assert any(kind == "duplicate" for _, kind, _ in inj.injected)
        assert all(p.state is ProcState.DONE for p in eng.procs.values())

    def test_slow_node_stretches_compute(self):
        def worker(proc):
            with proc.function("m.c", "f"):
                yield Compute(10.0)

        def make(plan=None):
            eng = Engine(Machine.named("n", 1), latency=LAT)
            eng.add_process("p", "n0", worker)
            if plan:
                apply_faults(eng, plan)
            return eng.run()

        assert make() == pytest.approx(10.0)
        assert make(FaultPlan(slow_nodes={"n0": 3.0})) == pytest.approx(30.0)

    def test_crash_at_time_kills_process(self):
        eng = pingpong(n_rounds=50)
        apply_faults(eng, FaultPlan(crash_at={"p": 5.0}, max_virtual_time=100.0))
        with pytest.raises(SimulationError) as info:
            eng.run()
        assert eng.procs["p"].state is ProcState.CRASHED
        assert "crashed processes: ['p']" in str(info.value)

    def test_hang_at_time_trips_watchdog(self):
        eng = pingpong(n_rounds=50)
        eng.schedule_periodic(1.0, lambda _: None)  # keeps virtual time flowing
        apply_faults(eng, FaultPlan(hang_at={"q": 5.0}))
        with pytest.raises(SimTimeout) as info:
            eng.run(max_time=40.0)
        assert any(b["process"] == "q" and b["kind"] == "hang"
                   for b in info.value.blocked)
        assert info.value.budget == {"max_time": 40.0}

    def test_max_events_budget(self):
        eng = pingpong(n_rounds=200)
        with pytest.raises(SimTimeout) as info:
            eng.run(max_events=20)
        assert info.value.budget == {"max_events": 20}


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def trace(seed):
            eng = pingpong(n_rounds=20)
            sink = TraceCollector()
            eng.add_sink(sink)
            apply_faults(eng, FaultPlan(seed=seed, drop=0.2, delay=0.3,
                                        delay_seconds=0.7))
            try:
                eng.run(max_time=500.0)
            except SimulationError:
                pass
            return [
                (s.process, s.start, s.end, s.activity, s.module, s.function)
                for s in sink.segments
            ]

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)

    def test_same_plan_same_diagnosis_record(self):
        plan = FaultPlan(seed=5, delay=0.3, delay_seconds=0.5,
                         slow_nodes={"node09": 1.5}, max_virtual_time=400.0)

        def record():
            data = run_diagnosis(
                build_poisson("C", PoissonConfig(iterations=40)),
                config=FAST, run_id="det", faults=plan, on_failure="degrade",
            ).to_dict()
            data["metrics"] = deterministic_metrics(data["metrics"])
            return data

        first, second = record(), record()
        assert first == second

    def test_faulty_run_differs_from_clean(self):
        clean = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=40)),
            config=FAST, run_id="det",
        ).to_dict()
        faulty = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=40)),
            config=FAST, run_id="det",
            faults=FaultPlan(seed=5, slow_nodes={"node09": 4.0}),
        ).to_dict()
        assert clean["finish_time"] != faulty["finish_time"]


class TestGracefulDegradation:
    def test_crash_degrades_instead_of_raising(self):
        plan = FaultPlan(seed=3, crash_at={"Poisson:2": 12.0}, max_virtual_time=60.0)
        app = build_poisson("C", PoissonConfig(iterations=40))
        with pytest.raises(SimulationError):
            run_diagnosis(app, config=FAST, faults=plan)
        record = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=40)),
            config=FAST, faults=plan, on_failure="degrade",
        )
        assert record.status == "degraded"
        assert record.degraded
        assert "SimTimeout" in record.failure
        assert 0.0 <= record.coverage <= 1.0
        assert record.pairs_tested > 0  # partial results survived
        assert "FaultPlan" in record.notes

    def test_unknown_pairs_annotated_with_reason(self):
        plan = FaultPlan(seed=3, hang_at={"Poisson:1": 8.0}, max_virtual_time=30.0)
        record = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=40)),
            config=FAST, faults=plan, on_failure="degrade",
        )
        assert record.status == "degraded"
        annotated = [n for n in record.shg_nodes if n.get("quality")]
        assert annotated, "degraded run should annotate undecided pairs"
        assert any("SimTimeout" in n["quality"] for n in annotated)

    def test_healthy_run_reports_full_coverage(self):
        record = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=40)), config=FAST,
        )
        assert record.status == "complete"
        assert record.failure is None
        assert record.coverage == 1.0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_failure"):
            run_diagnosis(
                build_poisson("C", PoissonConfig(iterations=10)),
                config=FAST, on_failure="ignore",
            )
