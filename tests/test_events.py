"""Unit tests for the event queue."""

from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        out = []
        q.push(2.0, lambda: out.append("b"))
        q.push(1.0, lambda: out.append("a"))
        q.push(3.0, lambda: out.append("c"))
        while (item := q.pop()) is not None:
            item[1]()
        assert out == ["a", "b", "c"]

    def test_fifo_ties(self):
        q = EventQueue()
        out = []
        for name in "abc":
            q.push(1.0, lambda n=name: out.append(n))
        while (item := q.pop()) is not None:
            item[1]()
        assert out == ["a", "b", "c"]

    def test_pop_returns_time(self):
        q = EventQueue()
        q.push(5.5, lambda: None)
        t, fn = q.pop()
        assert t == 5.5

    def test_pop_empty(self):
        assert EventQueue().pop() is None

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(4.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 2.0

    def test_cancel(self):
        q = EventQueue()
        out = []
        tok = q.push(1.0, lambda: out.append("x"))
        q.push(2.0, lambda: out.append("y"))
        q.cancel(tok)
        while (item := q.pop()) is not None:
            item[1]()
        assert out == ["y"]

    def test_cancel_reflected_in_peek(self):
        q = EventQueue()
        tok = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(tok)
        assert q.peek_time() == 2.0

    def test_len_and_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.clear()
        assert len(q) == 0
        assert q.pop() is None
