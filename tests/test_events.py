"""Unit tests for the event queue."""

from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        out = []
        q.push(2.0, lambda: out.append("b"))
        q.push(1.0, lambda: out.append("a"))
        q.push(3.0, lambda: out.append("c"))
        while (item := q.pop()) is not None:
            item[1]()
        assert out == ["a", "b", "c"]

    def test_fifo_ties(self):
        q = EventQueue()
        out = []
        for name in "abc":
            q.push(1.0, lambda n=name: out.append(n))
        while (item := q.pop()) is not None:
            item[1]()
        assert out == ["a", "b", "c"]

    def test_pop_returns_time(self):
        q = EventQueue()
        q.push(5.5, lambda: None)
        t, fn = q.pop()
        assert t == 5.5

    def test_pop_empty(self):
        assert EventQueue().pop() is None

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(4.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 2.0

    def test_cancel(self):
        q = EventQueue()
        out = []
        tok = q.push(1.0, lambda: out.append("x"))
        q.push(2.0, lambda: out.append("y"))
        q.cancel(tok)
        while (item := q.pop()) is not None:
            item[1]()
        assert out == ["y"]

    def test_cancel_reflected_in_peek(self):
        q = EventQueue()
        tok = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(tok)
        assert q.peek_time() == 2.0

    def test_len_and_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.clear()
        assert len(q) == 0
        assert q.pop() is None


class TestCancelledSetBounded:
    """The cancelled-token set must not leak (ISSUE 8 satellite)."""

    def test_cancel_after_pop_does_not_leak(self):
        # Cancelling tokens whose events already fired used to leave one
        # dead entry in the set per cancel, forever.  Compaction bounds
        # the set by the heap size.
        q = EventQueue()
        for round_ in range(200):
            toks = [q.push(float(round_), lambda: None) for _ in range(5)]
            for _ in toks:
                q.pop()
            for tok in toks:  # cancel *after* the events fired
                q.cancel(tok)
            assert len(q._cancelled) <= max(len(q._heap), 1)
        assert len(q._cancelled) <= 1

    def test_churn_live_and_dead_tokens(self):
        q = EventQueue()
        fired = []
        live_cancelled = set()
        for i in range(100):
            keep = q.push(float(i), lambda i=i: fired.append(i))
            dead = q.push(float(i) + 0.5, lambda: fired.append(-1))
            if i % 2:
                q.cancel(dead)  # cancel while still queued
                live_cancelled.add(dead)
            else:
                pass
            # the set never outgrows the heap
            assert len(q._cancelled) <= max(len(q._heap), 1)
        drained = 0
        while q.pop() is not None:
            drained += 1
        # every queued, uncancelled event is still delivered exactly once
        assert drained == 200 - len(live_cancelled)
        # and draining leaves no tokens behind after late cancels
        for tok in range(300, 350):
            q.cancel(tok)
        assert len(q._cancelled) <= 1

    def test_compaction_preserves_order(self):
        q = EventQueue()
        out = []
        toks = [q.push(float(i), lambda i=i: out.append(i)) for i in range(20)]
        for tok in toks[::2]:
            q.cancel(tok)
        # force repeated compactions with dead cancels
        for dead in range(1000, 1040):
            q.cancel(dead)
        while (item := q.pop()) is not None:
            item[1]()
        assert out == list(range(1, 20, 2))
