"""The resilience layer: retry policy, circuit breaker, and the guarded
backend wrapper (including the sqlite busy -> retry -> StoreUnavailable
escalation the resilience layer was built for)."""

import errno
import sqlite3

import pytest

from repro.resilience import (
    CircuitBreaker,
    CircuitOpen,
    ResiliencePolicy,
    ResilientBackend,
    RetryExhausted,
    RetryPolicy,
    is_transient,
)
from repro.storage import (
    ExperimentStore,
    RunRecord,
    SQLiteBackend,
    StoreError,
    StoreUnavailable,
)


def _record(run_id: str) -> RunRecord:
    return RunRecord(
        run_id=run_id,
        app_name="resil",
        version="1",
        n_processes=1,
        nodes=["n0"],
        placement={"p0": "n0"},
        hierarchies={"Code": ["/Code"]},
        shg_nodes=[],
        profile={},
        finish_time=1.0,
        search_done_time=None,
        pairs_tested=0,
        total_requests=0,
        peak_cost=0.0,
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def _fast(**kwargs) -> RetryPolicy:
    clock = FakeClock()
    kwargs.setdefault("sleep", clock.sleep)
    kwargs.setdefault("clock", clock)
    return RetryPolicy(**kwargs)


class TestClassify:
    def test_sqlite_locked_is_transient(self):
        assert is_transient(sqlite3.OperationalError("database is locked"))
        assert is_transient(sqlite3.OperationalError("database table is locked"))
        assert not is_transient(sqlite3.OperationalError("no such table: runs"))

    def test_errno_families(self):
        assert is_transient(OSError(errno.EIO, "io"))
        assert is_transient(OSError(errno.EAGAIN, "again"))
        assert not is_transient(OSError(errno.ENOSPC, "full"))
        assert not is_transient(OSError(errno.ENOENT, "gone"))

    def test_domain_errors_are_final(self):
        assert not is_transient(StoreError("no such run"))
        assert not is_transient(ValueError("nope"))


class TestRetryPolicy:
    def test_first_try_success_no_sleep(self):
        sleeps = []
        policy = _fast(sleep=sleeps.append)
        assert policy.call(lambda: "ok") == "ok"
        assert sleeps == []

    def test_transient_failures_retried_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(errno.EIO, "injected")
            return "recovered"

        assert _fast(attempts=4).call(flaky) == "recovered"
        assert calls["n"] == 3

    def test_non_transient_raises_immediately(self):
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise StoreError("already stored")

        with pytest.raises(StoreError):
            _fast(attempts=4).call(fatal)
        assert calls["n"] == 1

    def test_exhaustion_raises_typed_error_with_provenance(self):
        def always():
            raise OSError(errno.EIO, "injected")

        policy = _fast(attempts=3)
        with pytest.raises(RetryExhausted) as exc_info:
            policy.call(always, describe="file put")
        assert exc_info.value.attempts == 3
        assert isinstance(exc_info.value.last, OSError)
        assert "file put" in str(exc_info.value)

    def test_deadline_cuts_retries_short(self):
        clock = FakeClock()
        policy = RetryPolicy(attempts=100, base_delay=0.5, multiplier=1.0,
                             jitter=0.0, deadline_s=1.0,
                             sleep=clock.sleep, clock=clock)
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            raise OSError(errno.EIO, "injected")

        with pytest.raises(RetryExhausted):
            policy.call(always)
        # 0.5s per backoff into a 1.0s budget: attempt, 2 sleeps, done
        assert calls["n"] == 3

    def test_backoff_is_seeded_and_bounded(self):
        a = RetryPolicy(seed=9)
        b = RetryPolicy(seed=9)
        delays_a = [a.delay_for(n) for n in range(1, 6)]
        delays_b = [b.delay_for(n) for n in range(1, 6)]
        assert delays_a == delays_b
        for n, delay in enumerate(delays_a, start=1):
            raw = min(a.base_delay * a.multiplier ** (n - 1), a.max_delay)
            assert raw * (1 - a.jitter) <= delay <= raw

    def test_on_retry_observer(self):
        seen = []
        policy = _fast(attempts=3,
                       on_retry=lambda n, d, e: seen.append((n, type(e))))

        def always():
            raise OSError(errno.EIO, "injected")

        with pytest.raises(RetryExhausted):
            policy.call(always)
        assert seen == [(1, OSError), (2, OSError)]


class TestCircuitBreaker:
    def _breaker(self, **kwargs) -> CircuitBreaker:
        self.clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_timeout_s", 10.0)
        return CircuitBreaker("test", clock=self.clock, **kwargs)

    def test_opens_after_threshold(self):
        breaker = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen):
            breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        self.clock.now += 10.0
        assert breaker.state == "half-open"
        breaker.allow()  # the probe slot
        with pytest.raises(CircuitOpen):
            breaker.allow()  # second concurrent probe rejected
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        self.clock.now += 10.0
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        metrics = breaker.metrics()
        assert metrics["breaker_opened_total"] == 2.0
        assert metrics["breaker_probe_failures"] == 1.0

    def test_metrics_shape(self):
        breaker = self._breaker()
        metrics = breaker.metrics()
        assert set(metrics) == {
            "breaker_state", "breaker_opened_total", "breaker_rejected_total",
            "breaker_probe_successes", "breaker_probe_failures",
            "breaker_consecutive_failures",
        }
        assert all(isinstance(v, float) for v in metrics.values())


class _FlakyBackend:
    """Minimal StorageBackend-shaped stub with scriptable failures."""

    name = "flaky"

    def __init__(self, fail_times: int = 0,
                 exc_factory=lambda: OSError(errno.EIO, "injected")) -> None:
        self.fail_times = fail_times
        self.exc_factory = exc_factory
        self.calls = 0
        self.stored = {}

    def put(self, run_id, payload, meta, *, overwrite=False):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.exc_factory()
        self.stored[run_id] = payload
        return (len(self.stored), None)

    def get(self, run_id):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.exc_factory()
        if run_id not in self.stored:
            raise StoreError(f"no stored run {run_id!r}")
        return self.stored[run_id]

    def record_path(self, run_id):
        return None


def _wrap(inner, **overrides) -> ResilientBackend:
    clock = FakeClock()
    policy = ResiliencePolicy(
        attempts=overrides.pop("attempts", 3),
        base_delay=1e-4, max_delay=1e-3, deadline_s=60.0,
        sleep=clock.sleep, clock=clock, **overrides,
    )
    return ResilientBackend(inner, policy)


class TestResilientBackend:
    def test_transient_failure_retried_to_success(self):
        inner = _FlakyBackend(fail_times=2)
        wrapped = _wrap(inner)
        wrapped.put("r0", {"x": 1}, {})
        assert inner.stored == {"r0": {"x": 1}}
        metrics = wrapped.metrics()
        assert metrics["retries_total"] == 2.0
        assert metrics["unavailable_total"] == 0.0

    def test_exhaustion_becomes_store_unavailable(self):
        inner = _FlakyBackend(fail_times=99)
        wrapped = _wrap(inner)
        with pytest.raises(StoreUnavailable) as exc_info:
            wrapped.get("r0")
        assert isinstance(exc_info.value.__cause__, OSError)
        assert wrapped.metrics()["unavailable_total"] == 1.0

    def test_domain_error_passes_through_untouched(self):
        inner = _FlakyBackend()
        wrapped = _wrap(inner)
        with pytest.raises(StoreError, match="no stored run"):
            wrapped.get("ghost")
        # the store answered: no breaker damage
        assert wrapped.metrics()["breaker_consecutive_failures"] == 0.0

    def test_breaker_opens_and_fails_fast(self):
        inner = _FlakyBackend(fail_times=10**6)
        wrapped = _wrap(inner, breaker_threshold=2)
        for _ in range(2):
            with pytest.raises(StoreUnavailable):
                wrapped.get("r0")
        calls_before = inner.calls
        with pytest.raises(StoreUnavailable, match="circuit breaker"):
            wrapped.get("r0")
        assert inner.calls == calls_before  # rejected without touching disk
        assert wrapped.metrics()["breaker_state"] == 1.0

    def test_inner_attribute_fallthrough(self):
        inner = _FlakyBackend()
        wrapped = _wrap(inner)
        assert wrapped.inner is inner
        assert wrapped.name == "flaky"
        assert wrapped.exc_factory is inner.exc_factory


class TestSqliteBusyEscalation:
    """The satellite: sqlite 'database is locked' goes through RetryPolicy
    and surfaces as a typed StoreUnavailable, not a raw OperationalError."""

    def test_busy_retried_then_typed(self, tmp_path):
        retry = RetryPolicy(attempts=3, base_delay=1e-4, max_delay=1e-3,
                            deadline_s=60.0, sleep=lambda s: None)
        backend = SQLiteBackend(tmp_path / "runs", retry=retry)
        calls = {"n": 0}
        real = backend._execute

        def contended(sql, params=()):
            calls["n"] += 1
            raise sqlite3.OperationalError("database is locked")

        backend._execute = contended
        try:
            with pytest.raises(StoreUnavailable) as exc_info:
                backend.contains("r0")
        finally:
            backend._execute = real
        assert calls["n"] == 3  # attempts, not a single strike
        assert isinstance(exc_info.value.__cause__, sqlite3.OperationalError)
        backend.close()

    def test_busy_that_clears_recovers(self, tmp_path):
        retry = RetryPolicy(attempts=4, base_delay=1e-4, max_delay=1e-3,
                            deadline_s=60.0, sleep=lambda s: None)
        store = ExperimentStore(tmp_path / "runs", backend=SQLiteBackend(
            tmp_path / "runs", retry=retry))
        store.save(_record("r0"))
        backend = store.backend
        calls = {"n": 0}
        real = backend._execute

        def flaky(sql, params=()):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise sqlite3.OperationalError("database is locked")
            return real(sql, params)

        backend._execute = flaky
        try:
            assert store.load("r0").run_id == "r0"
        finally:
            backend._execute = real
        assert calls["n"] >= 3


class TestStoreIntegration:
    def test_store_wraps_by_default_and_exposes_metrics(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(_record("r0"))
        metrics = store.resilience_metrics()
        assert metrics["ops_total"] >= 1.0
        assert metrics["breaker_state"] == 0.0

    def test_resilience_false_gives_raw_backend(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", resilience=False)
        assert store.resilience_metrics() == {}

    def test_backend_property_stays_inner(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        assert not isinstance(store.backend, ResilientBackend)
        assert store.backend.name == "file"
