"""Tests for the concurrent session scheduler (DiagnosisService)."""

import asyncio

import pytest

from repro.apps.synthetic import make_pingpong
from repro.apps.tester import TesterConfig, build_tester
from repro.core import SearchConfig
from repro.core.consultant import DiagnosisSession
from repro.obs import deterministic_metrics
from repro.server import (
    DiagnosisService,
    ServerBusy,
    SessionRequest,
    StorePool,
    TenantPolicy,
)
from repro.simulator.errors import SimTimeout
from repro.storage import ExperimentStore

FAST = SearchConfig(min_interval=5.0, check_period=0.5,
                    insertion_latency=0.2, cost_limit=50.0)

#: Metrics that legitimately differ between sliced and one-shot execution:
#: wall clock, and the segment flush batching the slicing boundaries change.
LOOP_SHAPE = {"emit_batches"}


def comparable(record):
    out = record.to_dict()
    out["run_id"] = "X"
    out["metrics"] = {
        k: v for k, v in deterministic_metrics(out["metrics"]).items()
        if k not in LOOP_SHAPE
    }
    return out


def _request(run_id=None, **kwargs):
    kwargs.setdefault("app", make_pingpong(iterations=60))
    kwargs.setdefault("config", FAST)
    return SessionRequest(run_id=run_id, **kwargs)


def run_service(coro):
    return asyncio.run(coro)


class TestActiveDiagnosis:
    """The begin()/step()/result() seam the scheduler is built on."""

    def test_sliced_equals_oneshot(self):
        oneshot = DiagnosisSession(
            app=make_pingpong(iterations=60), config=FAST, run_id="x"
        ).run()
        active = DiagnosisSession(
            app=make_pingpong(iterations=60), config=FAST, run_id="x"
        ).begin()
        slices = 0
        while active.step(40):
            slices += 1
        sliced = active.result()
        assert slices > 2  # the budget actually sliced the run
        assert comparable(sliced) == comparable(oneshot)

    def test_step_without_budget_runs_to_completion(self):
        active = DiagnosisSession(
            app=make_pingpong(iterations=60), config=FAST
        ).begin()
        assert active.step() is False
        assert active.done
        assert active.result().status == "complete"

    def test_result_before_done_raises(self):
        active = DiagnosisSession(
            app=make_pingpong(iterations=60), config=FAST
        ).begin()
        with pytest.raises(RuntimeError, match="in progress"):
            active.result()

    def test_session_budget_still_raises_when_sliced(self):
        active = DiagnosisSession(
            app=make_pingpong(iterations=500), config=FAST,
            max_events=100, on_failure="raise",
        ).begin()
        with pytest.raises(SimTimeout):
            while active.step(40):
                pass

    def test_session_budget_degrades_when_sliced(self):
        active = DiagnosisSession(
            app=make_pingpong(iterations=500), config=FAST,
            max_events=100, on_failure="degrade",
        ).begin()
        while active.step(40):
            pass
        record = active.result()
        assert record.status == "degraded"
        assert "SimTimeout" in record.failure
        assert active.events_dispatched == 100


class TestDiagnosisService:
    def test_concurrent_records_identical_to_serial(self):
        serial = [
            DiagnosisSession(
                app=make_pingpong(iterations=60), config=FAST, run_id=f"r{i}"
            ).run()
            for i in range(4)
        ]

        async def main():
            service = DiagnosisService(max_concurrent=4, slice_events=50)
            futures = [
                service.submit(_request(run_id=f"r{i}")) for i in range(4)
            ]
            return await asyncio.gather(*futures)

        served = run_service(main())
        for a, b in zip(served, serial):
            assert comparable(a) == comparable(b)

    def test_sessions_interleave(self):
        """With a small slice budget, no session finishes before every
        session has started — the loop is genuinely multiplexing."""
        order = []

        def progress(event):
            order.append((event["event"], event.get("run_id")))

        async def main():
            service = DiagnosisService(
                max_concurrent=4, slice_events=30, progress=progress
            )
            futures = [
                service.submit(_request(run_id=f"i{i}")) for i in range(3)
            ]
            await asyncio.gather(*futures)

        run_service(main())
        started = [i for i, (kind, _) in enumerate(order)
                   if kind == "session-started"]
        finished = [i for i, (kind, _) in enumerate(order)
                    if kind == "session-finished"]
        assert max(started) < min(finished)

    def test_queue_limit_backpressure(self):
        async def main():
            service = DiagnosisService(max_concurrent=1, queue_limit=2,
                                       slice_events=50)
            futures = [service.submit(_request()) for _ in range(3)]
            # 1 running + 2 queued = at the limit; the next is rejected.
            with pytest.raises(ServerBusy):
                service.submit(_request())
            assert service.counters["sessions_rejected"] == 1
            await asyncio.gather(*futures)

        run_service(main())

    def test_tenant_concurrency_cap_and_fairness(self):
        """A tenant at its cap is skipped, not waited on: the other
        tenant's sessions all run while capped's queue drains slowly."""
        async def main():
            service = DiagnosisService(
                max_concurrent=4, slice_events=50,
                tenants={"capped": TenantPolicy(max_concurrent=1)},
            )
            futures = [
                service.submit(_request(run_id=f"c{i}", tenant="capped"))
                for i in range(3)
            ] + [
                service.submit(_request(run_id=f"f{i}", tenant="free"))
                for i in range(3)
            ]
            running_caps = []

            async def watch():
                while service._running_total:
                    running_caps.append(service._running.get("capped", 0))
                    await asyncio.sleep(0)

            watcher = asyncio.get_running_loop().create_task(watch())
            records = await asyncio.gather(*futures)
            await watcher
            return records, running_caps

        records, running_caps = run_service(main())
        assert len(records) == 6
        assert all(r.status == "complete" for r in records)
        assert max(running_caps) <= 1  # the cap held throughout

    def test_save_through_pool(self, tmp_path):
        async def main():
            service = DiagnosisService(StorePool(), slice_events=50)
            record = await service.run(_request(
                run_id="saved", store=str(tmp_path / "runs")
            ))
            assert service.pool.stats()["stores_open"] == 1
            service.pool.close()
            return record

        record = run_service(main())
        loaded = ExperimentStore(tmp_path / "runs").load("saved")
        assert loaded.to_dict() == record.to_dict()

    def test_catalog_app_by_name(self):
        async def main():
            service = DiagnosisService(slice_events=500)
            return await service.run(SessionRequest(
                app="tester", iterations=20,
            ))

        record = run_service(main())
        assert record.app_name == "tester"
        assert record.status == "complete"

    def test_unknown_app_fails_session(self):
        async def main():
            service = DiagnosisService()
            with pytest.raises(ValueError, match="unknown application"):
                await service.run(SessionRequest(app="nosuch"))

        run_service(main())

    def test_history_harvested_through_pool(self, tmp_path):
        from repro import diagnose

        diagnose(make_pingpong(iterations=60), store=tmp_path / "runs",
                 run_id="seed", pool=None, min_interval=5.0,
                 check_period=0.5, insertion_latency=0.2, cost_limit=50.0)

        async def main():
            service = DiagnosisService(slice_events=50)
            first = await service.run(_request(
                run_id="d1", history=str(tmp_path / "runs")
            ))
            second = await service.run(_request(
                run_id="d2", history=str(tmp_path / "runs")
            ))
            assert service.pool.stats()["harvest_hits"] == 1
            return first, second

        first, second = run_service(main())
        assert first.status == second.status == "complete"

    def test_server_metrics_shape(self):
        from repro.obs import lint_prometheus_names, metrics_to_prometheus

        async def main():
            service = DiagnosisService(slice_events=50)
            await service.run(_request())
            return service.server_metrics()

        metrics = run_service(main())
        assert metrics["sessions_completed"] == 1
        assert metrics["active_sessions"] == 0
        assert lint_prometheus_names(metrics, prefix="repro_server") == []
        text = metrics_to_prometheus(metrics, prefix="repro_server")
        assert "repro_server_sessions_completed 1" in text

    def test_stop_rejects_queue(self):
        async def main():
            service = DiagnosisService(max_concurrent=1, slice_events=50)
            running = service.submit(_request())
            queued = service.submit(_request())
            await service.stop()
            record = await running
            assert record.status == "complete"
            with pytest.raises(ServerBusy):
                await queued
            with pytest.raises(ServerBusy):
                service.submit(_request())

        run_service(main())

    def test_executor_path(self):
        from repro.campaign import default_executor

        async def main():
            service = DiagnosisService(
                slice_events=50, executor=default_executor(1)
            )
            return await service.run(SessionRequest(
                app="tester", iterations=20, run_id="worker-run"
            ))

        record = run_service(main())
        oneshot = DiagnosisSession(
            app=build_tester(TesterConfig(iterations=20)),
            run_id="worker-run",
        ).run()
        assert comparable(record) == comparable(oneshot)
