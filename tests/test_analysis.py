"""Tests for bottleneck-set analysis, efficiency, similarity, and tables."""

import math

import pytest

from repro.analysis import (
    Table,
    base_bottleneck_set,
    canonical_pairs,
    canonicalize_focus,
    format_reduction,
    format_seconds,
    membership_partition,
    optimal_threshold,
    priority_similarity,
    reduction,
    significant_areas,
    areas_reported,
    threshold_point,
    time_to_fraction,
)
from repro.apps.synthetic import make_pingpong
from repro.core import (
    DirectiveSet,
    PriorityDirective,
    SearchConfig,
    run_diagnosis,
)
from repro.core.shg import Priority
from repro.metrics import CostModel
from repro.resources import whole_program

SYNC = "ExcessiveSyncWaitingTime"
FAST = SearchConfig(
    min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0, noise_band=0.0
)

PLACEMENT = {"pp:1": "n0", "pp:2": "n1"}


@pytest.fixture(scope="module")
def record():
    app = make_pingpong(iterations=100, slow=1.0, fast=0.2)
    return run_diagnosis(app, config=FAST, cost_model=CostModel(perturb_per_unit=0.0))


class TestCanonicalization:
    def test_machine_collapsed_into_process(self):
        f = "< /Code, /Machine/n1, /Process, /SyncObject >"
        out = canonicalize_focus(f, PLACEMENT)
        assert out == "< /Code, /Machine, /Process/pp:2, /SyncObject >"

    def test_machine_dropped_when_process_constrained(self):
        f = "< /Code, /Machine/n1, /Process/pp:2, /SyncObject >"
        out = canonicalize_focus(f, PLACEMENT)
        assert out == "< /Code, /Machine, /Process/pp:2, /SyncObject >"

    def test_unconstrained_unchanged(self):
        f = str(whole_program())
        assert canonicalize_focus(f, PLACEMENT) == f

    def test_non_bijection_untouched(self):
        f = "< /Code, /Machine/n0, /Process, /SyncObject >"
        shared = {"a": "n0", "b": "n0"}
        assert canonicalize_focus(f, shared) == f

    def test_canonical_pairs_dedup(self):
        pairs = [
            (SYNC, "< /Code, /Machine/n1, /Process, /SyncObject >"),
            (SYNC, "< /Code, /Machine, /Process/pp:2, /SyncObject >"),
        ]
        assert len(canonical_pairs(pairs, PLACEMENT)) == 1


class TestBaseSetAndTimes:
    def test_margin_zero_keeps_all_true(self, record):
        base = base_bottleneck_set(record, margin=0.0)
        assert len(base) == len(canonical_pairs(record.true_pairs(), record.placement))

    def test_margin_filters(self, record):
        loose = base_bottleneck_set(record, margin=0.0)
        tight = base_bottleneck_set(record, margin=0.2)
        assert tight <= loose

    def test_time_to_fraction_monotone(self, record):
        base = base_bottleneck_set(record, margin=0.05)
        t = time_to_fraction(record, base)
        assert t[0.25] <= t[0.5] <= t[0.75] <= t[1.0]

    def test_time_to_fraction_inf_for_missing(self, record):
        fake = {(SYNC, "< /Code/ghost.c, /Machine, /Process, /SyncObject >")}
        t = time_to_fraction(record, fake)
        assert math.isinf(t[1.0])

    def test_empty_base_set(self, record):
        t = time_to_fraction(record, set())
        assert all(math.isinf(v) for v in t.values())

    def test_reduction(self):
        assert reduction(100.0, 20.0) == pytest.approx(-80.0)
        assert math.isnan(reduction(100.0, math.inf))


class TestSignificantAreas:
    def test_areas_from_profile(self, record):
        prof = record.flat_profile()
        areas = significant_areas(prof, record.placement, min_fraction=0.05, per_process_min=0.3)
        names = {a.label for a in areas}
        assert any("pp.c" in n or "Process" in n or "Message" in n for n in names)
        # combinations appear alongside singles
        assert any(len(a.resources) == 2 for a in areas)

    def test_areas_reported_counts(self, record):
        prof = record.flat_profile()
        areas = significant_areas(prof, record.placement, min_fraction=0.05, per_process_min=0.3)
        hits = areas_reported(record, areas)
        assert all(v >= 0 for v in hits.values())
        # the dominant wait areas must be reported by the search
        assert sum(1 for v in hits.values() if v > 0) >= 1


class TestEfficiency:
    def test_threshold_point(self, record):
        p = threshold_point(record, 0.2)
        assert p.pairs_tested == record.pairs_tested
        assert p.efficiency == pytest.approx(record.efficiency())

    def test_optimal_threshold_largest_complete(self):
        pts = [
            threshold_point_like(0.30, 10),
            threshold_point_like(0.20, 26),
            threshold_point_like(0.12, 26),
            threshold_point_like(0.05, 26),
        ]
        assert optimal_threshold(pts, full_count=26) == 0.20

    def test_optimal_threshold_fallback(self):
        pts = [threshold_point_like(0.30, 10), threshold_point_like(0.12, 20)]
        assert optimal_threshold(pts, full_count=26) == 0.12


def threshold_point_like(threshold, found):
    from repro.analysis import ThresholdPoint

    return ThresholdPoint(threshold=threshold, bottlenecks=found, pairs_tested=100,
                          efficiency=found / 100)


class TestSimilarity:
    def test_membership_partition(self):
        sets = {"A": {1, 2, 3}, "B": {2, 3, 4}, "C": {3}}
        part = membership_partition(sets)
        assert part[("A",)] == 1
        assert part[("B",)] == 1
        assert part[("A", "B")] == 1
        assert part[("A", "B", "C")] == 1
        assert part[("C",)] == 0
        assert sum(part.values()) == 4  # distinct elements

    def test_priority_similarity_rows(self):
        def ds(highs, lows):
            prios = [
                PriorityDirective(SYNC, whole_program().with_selection("Code", c), Priority.HIGH)
                for c in highs
            ] + [
                PriorityDirective(SYNC, whole_program().with_selection("Code", c), Priority.LOW)
                for c in lows
            ]
            return DirectiveSet(priorities=prios)

        table = priority_similarity({
            "A": ds(["/Code/x.c"], ["/Code/c.c"]),
            "B": ds(["/Code/x.c", "/Code/y.c"], []),
        })
        assert table["High"][("A", "B")] == 1
        assert table["High"][("B",)] == 1
        assert table["Low"][("A",)] == 1
        assert table["Both"][("A", "B")] == 1


class TestTableRenderer:
    def test_render_alignment(self):
        t = Table("Demo", ["col", "value"])
        t.add_row(["a", 1])
        t.add_row(["longer", 2.5])
        text = t.render()
        assert "Demo" in text and "longer" in text
        lines = text.splitlines()
        assert lines[1] == "=" * len("Demo")

    def test_row_width_check(self):
        t = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(["only-one"])

    def test_footnotes(self):
        t = Table("Demo", ["a"])
        t.add_row(["x"])
        t.add_footnote("note")
        assert "* note" in t.render()

    def test_format_helpers(self):
        assert format_seconds(math.inf) == "--"
        assert format_seconds(12.34) == "12.3"
        assert format_reduction(-93.5) == "(-93.5%)"
        assert format_reduction(float("nan")) == ""
