"""Engine tests: message passing, non-blocking ops, barriers, deadlock."""

import pytest

from repro.simulator import (
    ANY_SOURCE,
    Activity,
    Barrier,
    Compute,
    Engine,
    Irecv,
    Isend,
    LatencyModel,
    Machine,
    Recv,
    Send,
    SimDeadlock,
    TraceCollector,
    WaitReq,
)

LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)


def make_engine(n=2, latency=LAT):
    return Engine(Machine.named("n", n), latency=latency)


def run_pair(p0, p1, latency=LAT):
    eng = make_engine(2, latency)
    tc = TraceCollector()
    eng.add_sink(tc)
    eng.add_process("a", "n0", p0)
    eng.add_process("b", "n1", p1)
    t = eng.run()
    return eng, tc, t


class TestBlockingMessaging:
    def test_receiver_waits_for_slow_sender(self):
        def p0(proc):
            with proc.function("m", "f"):
                yield Compute(3.0)
                yield Send("b", "t/0", 0)

        def p1(proc):
            with proc.function("m", "g"):
                yield Compute(1.0)
                yield Recv("a", "t/0")

        eng, tc, t = run_pair(p0, p1)
        assert tc.total(Activity.SYNC) == pytest.approx(2.0)
        assert t == pytest.approx(3.0)

    def test_no_wait_when_message_already_arrived(self):
        def p0(proc):
            with proc.function("m", "f"):
                yield Send("b", "t/0", 0)
                yield Compute(1.0)

        def p1(proc):
            with proc.function("m", "g"):
                yield Compute(2.0)
                yield Recv("a", "t/0")

        eng, tc, t = run_pair(p0, p1)
        assert tc.total(Activity.SYNC) == pytest.approx(0.0)

    def test_wait_attributed_to_tag(self):
        def p0(proc):
            with proc.function("m", "f"):
                yield Compute(2.0)
                yield Send("b", "3/0", 0)

        def p1(proc):
            with proc.function("m", "g"):
                yield Recv("a", "3/0")

        eng, tc, t = run_pair(p0, p1)
        sync = [s for s in tc.segments if s.activity is Activity.SYNC]
        assert len(sync) == 1
        assert sync[0].tag == "3/0"
        assert sync[0].parts["SyncObject"] == ("SyncObject", "Message", "3", "0")

    def test_tag_mismatch_no_match(self):
        def p0(proc):
            yield Send("b", "t/0", 0)
            yield Send("b", "t/1", 0)

        def p1(proc):
            with proc.function("m", "g"):
                yield Recv("a", "t/1")
                yield Recv("a", "t/0")

        eng, tc, t = run_pair(p0, p1)  # both eventually matched

    def test_fifo_same_tag(self):
        got = []

        def p0(proc):
            yield Send("b", "t/0", 11)
            yield Send("b", "t/0", 22)

        def p1(proc):
            m1 = yield Recv("a", "t/0")
            m2 = yield Recv("a", "t/0")
            got.extend([m1.size, m2.size])

        run_pair(p0, p1)
        assert got == [11, 22]

    def test_any_source(self):
        def p0(proc):
            yield Compute(1.0)
            yield Send("b", "t/0", 0)

        def p1(proc):
            with proc.function("m", "g"):
                yield Recv(ANY_SOURCE, "t/0")

        eng, tc, t = run_pair(p0, p1)
        assert t == pytest.approx(1.0)

    def test_send_to_unknown_process(self):
        eng = make_engine(1)

        def prog(proc):
            yield Send("ghost", "t/0", 0)

        eng.add_process("a", "n0", prog)
        with pytest.raises(Exception):
            eng.run()

    def test_transfer_latency_applied(self):
        lat = LatencyModel(alpha=0.5, beta=0.001, send_overhead=0.0, recv_overhead=0.0)

        def p0(proc):
            yield Send("b", "t/0", 1000.0)

        def p1(proc):
            with proc.function("m", "g"):
                yield Recv("a", "t/0")

        eng, tc, t = run_pair(p0, p1, latency=lat)
        assert t == pytest.approx(0.5 + 1.0)


class TestNonBlocking:
    def test_isend_returns_completed_request(self):
        reqs = []

        def p0(proc):
            r = yield Isend("b", "t/0", 0)
            reqs.append(r)

        def p1(proc):
            yield Recv("a", "t/0")

        run_pair(p0, p1)
        assert reqs and reqs[0].complete

    def test_irecv_wait_overlap_hides_latency(self):
        def p0(proc):
            with proc.function("m", "f"):
                yield Compute(2.0)
                yield Send("b", "t/0", 0)

        def p1(proc):
            with proc.function("m", "g"):
                req = yield Irecv("a", "t/0")
                yield Compute(3.0)  # overlaps the sender's compute
                yield WaitReq(req)

        eng, tc, t = run_pair(p0, p1)
        assert tc.total(Activity.SYNC) == pytest.approx(0.0)
        assert t == pytest.approx(3.0)

    def test_wait_blocks_when_incomplete(self):
        def p0(proc):
            with proc.function("m", "f"):
                yield Compute(4.0)
                yield Send("b", "t/0", 0)

        def p1(proc):
            with proc.function("m", "g"):
                req = yield Irecv("a", "t/0")
                yield Compute(1.0)
                yield WaitReq(req)

        eng, tc, t = run_pair(p0, p1)
        assert tc.total(Activity.SYNC) == pytest.approx(3.0)

    def test_irecv_matches_already_arrived(self):
        def p0(proc):
            yield Send("b", "t/0", 0)

        def p1(proc):
            yield Compute(1.0)
            req = yield Irecv("a", "t/0")
            assert req.complete
            yield WaitReq(req)

        run_pair(p0, p1)

    def test_wait_returns_message(self):
        sizes = []

        def p0(proc):
            yield Send("b", "t/0", 77.0)

        def p1(proc):
            req = yield Irecv("a", "t/0")
            msg = yield WaitReq(req)
            sizes.append(msg.size)

        run_pair(p0, p1)
        assert sizes == [77.0]


class TestBarrier:
    def test_barrier_synchronises(self):
        def p0(proc):
            with proc.function("m", "f"):
                yield Compute(1.0)
                yield Barrier()

        def p1(proc):
            with proc.function("m", "g"):
                yield Compute(4.0)
                yield Barrier()

        eng, tc, t = run_pair(p0, p1)
        assert tc.total(Activity.SYNC) == pytest.approx(3.0)
        sync = [s for s in tc.segments if s.activity is Activity.SYNC]
        assert sync[0].tag == "Barrier"
        assert sync[0].parts["SyncObject"] == ("SyncObject", "Barrier")


class TestDeadlock:
    def test_recv_without_send_deadlocks(self):
        def p0(proc):
            with proc.function("m", "f"):
                yield Recv("b", "t/0")

        def p1(proc):
            with proc.function("m", "g"):
                yield Compute(1.0)

        eng = make_engine(2)
        eng.add_process("a", "n0", p0)
        eng.add_process("b", "n1", p1)
        with pytest.raises(SimDeadlock):
            eng.run()
