"""The redesigned public storage surface: repro.storage.api, the
keyword-only ExperimentStore constructor, resolve_store, and the
deprecation shims kept for pre-redesign callers."""

import multiprocessing
import warnings

import pytest

from repro.facade import as_store, resolve_store
from repro.storage import (
    ExperimentStore,
    FileBackend,
    RunRecord,
    SQLiteBackend,
    StorageBackend,
    StoreError,
    StoreHandle,
)
from repro.storage import api as storage_api


def _tiny_record(run_id: str, app_name: str = "api", version: str = "1") -> RunRecord:
    return RunRecord(
        run_id=run_id,
        app_name=app_name,
        version=version,
        n_processes=1,
        nodes=["n0"],
        placement={"p0": "n0"},
        hierarchies={"Code": ["/Code"]},
        shg_nodes=[],
        profile={},
        finish_time=1.0,
        search_done_time=None,
        pairs_tested=0,
        total_requests=0,
        peak_cost=0.0,
    )


class TestApiSurface:
    def test_explicit_all(self):
        assert set(storage_api.__all__) == {
            "StorageBackend",
            "StoreInfo",
            "StoreHandle",
            "CompactionStats",
            "RecoveryReport",
            "StoreError",
            "StoreCorruption",
            "StoreUnavailable",
        }
        for name in storage_api.__all__:
            assert hasattr(storage_api, name)

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            StorageBackend()

    def test_backends_implement_the_contract(self, tmp_path):
        for backend in (
            FileBackend(tmp_path / "f"),
            FileBackend(tmp_path / "l", segmented=False),
            SQLiteBackend(tmp_path / "s"),
        ):
            assert isinstance(backend, StorageBackend)

    def test_store_corruption_carries_quarantine_path(self):
        exc = storage_api.StoreCorruption("bad", quarantined_to=None)
        assert isinstance(exc, storage_api.StoreError)
        assert exc.quarantined_to is None


class TestKeywordOnlyConstructor:
    def test_positional_cache_size_warns_but_works(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="keyword"):
            store = ExperimentStore(tmp_path / "runs", 8)
        assert store.cache_info()["maxsize"] == 8

    def test_keyword_args_do_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store = ExperimentStore(tmp_path / "runs", cache_size=8)
        assert store.cache_info()["maxsize"] == 8

    def test_backend_instance_supplies_root(self, tmp_path):
        backend = FileBackend(tmp_path / "runs")
        store = ExperimentStore(backend=backend)
        assert store.root == tmp_path / "runs"
        assert store.backend is backend

    def test_no_root_no_backend_rejected(self):
        with pytest.raises(StoreError):
            ExperimentStore()

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="unknown storage backend"):
            ExperimentStore(tmp_path / "runs", backend="etcd")


class TestResolveStore:
    def test_path_opens_a_handle(self, tmp_path):
        handle = resolve_store(tmp_path / "runs")
        assert isinstance(handle, StoreHandle)
        assert handle.opened
        assert handle.backend == "file"
        assert handle.root == tmp_path / "runs"
        assert handle.info().runs == 0

    def test_open_store_passes_through(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        handle = resolve_store(store)
        assert handle.store is store
        assert not handle.opened

    def test_backend_pin(self, tmp_path):
        handle = resolve_store(tmp_path / "runs", backend="sqlite")
        assert handle.backend == "sqlite"

    def test_backend_pin_conflict_rejected(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", backend="file")
        with pytest.raises(StoreError, match="already open"):
            resolve_store(store, backend="sqlite")

    def test_auto_detects_sqlite_layout(self, tmp_path):
        ExperimentStore(tmp_path / "runs", backend="sqlite").save(
            _tiny_record("r0")
        )
        handle = resolve_store(tmp_path / "runs")
        assert handle.backend == "sqlite"
        assert handle.store.list() == ["r0"]

    def test_as_store_is_a_deprecated_alias(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="resolve_store"):
            store = as_store(tmp_path / "runs")
        assert isinstance(store, ExperimentStore)


class TestLoadManyFallbacks:
    def test_spawn_only_platform_warns_and_parses_serially(
        self, tmp_path, monkeypatch
    ):
        store = ExperimentStore(tmp_path / "runs", cache_size=0)
        for i in range(3):
            store.save(_tiny_record(f"r{i}"))
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.warns(RuntimeWarning, match="fork"):
            records = store.load_many(["r0", "r1", "r2"], processes=2)
        assert [r.run_id for r in records] == ["r0", "r1", "r2"]

    def test_pathless_backend_falls_back_silently(self, tmp_path):
        store = ExperimentStore(
            tmp_path / "runs", backend="sqlite", cache_size=0
        )
        for i in range(3):
            store.save(_tiny_record(f"r{i}"))
        assert store.backend.record_path("r0") is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records = store.load_many(["r0", "r1", "r2"], processes=2)
        assert [r.run_id for r in records] == ["r0", "r1", "r2"]
