"""Run metrics: assembly, aggregation, exports, record integration."""

import json

import pytest

from repro.apps.poisson import PoissonConfig, build_poisson
from repro.core import SearchConfig, run_diagnosis
from repro.obs import (
    WALL_CLOCK_METRICS,
    aggregate_metrics,
    deterministic_metrics,
    metrics_to_json,
    metrics_to_prometheus,
    run_metrics,
)
from repro.storage.records import RunRecord

FAST = SearchConfig(min_interval=5.0, check_period=0.5, insertion_latency=0.5,
                    cost_limit=50.0)


def sample(**overrides):
    base = dict(
        engine_events=1000, wall_seconds=2.0, virtual_seconds=50.0,
        peak_cost=4.0, mean_cost=2.5, pairs_instrumented=10,
        pairs_concluded=8, pairs_pruned=1, pairs_unknown=1,
        instr_requests=12, instr_deletes=10, instr_decimates=2,
        time_to_first_true=6.0, time_to_last_true=30.0,
    )
    base.update(overrides)
    return run_metrics(**base)


class TestRunMetrics:
    def test_rates_computed(self):
        m = sample()
        assert m["events_per_sec"] == pytest.approx(500.0)
        assert m["virtual_wall_ratio"] == pytest.approx(25.0)

    def test_zero_wall_guard(self):
        m = sample(wall_seconds=0.0)
        assert m["events_per_sec"] == 0.0
        assert m["virtual_wall_ratio"] == 0.0

    def test_none_times_allowed(self):
        m = sample(time_to_first_true=None, time_to_last_true=None)
        assert m["time_to_first_true"] is None

    def test_deterministic_subset(self):
        m = sample()
        kept = deterministic_metrics(m)
        assert not WALL_CLOCK_METRICS & set(kept)
        assert set(m) - set(kept) == set(WALL_CLOCK_METRICS)


class TestAggregate:
    def test_totals_max_and_means(self):
        agg = aggregate_metrics([sample(), sample(engine_events=3000,
                                                  peak_cost=9.0)])
        assert agg["runs"] == 2
        assert agg["engine_events_total"] == 4000
        assert agg["peak_cost_max"] == 9.0
        assert agg["mean_cost_mean"] == pytest.approx(2.5)

    def test_rates_recomputed_from_totals(self):
        # 1000 ev / 2 s and 3000 ev / 2 s -> 4000 / 4 = 1000 ev/s,
        # not the mean of the per-run rates (500 + 1500) / 2.
        agg = aggregate_metrics([sample(), sample(engine_events=3000)])
        assert agg["events_per_sec_mean"] == pytest.approx(1000.0)

    def test_none_excluded_from_means(self):
        agg = aggregate_metrics([
            sample(time_to_first_true=None), sample(time_to_first_true=4.0),
        ])
        assert agg["time_to_first_true_mean"] == pytest.approx(4.0)

    def test_empty_and_missing_rows(self):
        assert aggregate_metrics([]) == {"runs": 0}
        assert aggregate_metrics([{}, sample()])["runs"] == 1  # {} skipped


class TestExports:
    def test_json_round_trip(self):
        m = sample()
        assert json.loads(metrics_to_json(m)) == m

    def test_prometheus_format(self):
        text = metrics_to_prometheus(
            {"peak_cost": 4.0, "time_to_first_true": None},
            labels={"run_id": "r1"},
        )
        assert '# TYPE repro_run_peak_cost gauge' in text
        assert 'repro_run_peak_cost{run_id="r1"} 4' in text
        assert "time_to_first_true" not in text  # None omitted
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        text = metrics_to_prometheus({"x": 1}, labels={"app": 'a"b\\c'})
        assert 'app="a\\"b\\\\c"' in text


class TestRecordIntegration:
    def test_run_record_carries_metrics(self):
        record = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=8)), config=FAST,
        )
        m = record.metrics
        assert m["engine_events"] > 0
        assert m["wall_seconds"] > 0
        assert m["pairs_instrumented"] == record.pairs_tested
        assert m["peak_cost"] == record.peak_cost
        assert 0.0 < m["mean_cost"] <= m["peak_cost"]
        assert m["trace_events"] == 0  # untraced run
        round_tripped = RunRecord.from_dict(record.to_dict())
        assert round_tripped.metrics == m

    def test_old_records_default_to_empty(self):
        data = run_diagnosis(
            build_poisson("C", PoissonConfig(iterations=8)), config=FAST,
        ).to_dict()
        del data["metrics"]
        assert RunRecord.from_dict(data).metrics == {}

    def test_campaign_aggregates(self):
        from repro.campaign import Campaign, RunSpec

        result = Campaign(specs=[
            RunSpec(build_poisson, ("C", PoissonConfig(iterations=8)),
                    config=FAST)
            for _ in range(2)
        ], name="m").run()
        stage = result.stage("runs")
        assert stage.metrics()["runs"] == 2
        assert stage.metrics()["engine_events_total"] > 0
        assert result.metrics()["runs"] == 2
