"""Tests for call-stack capture and inclusive attribution."""

import pytest

from repro.metrics.profile import FlatProfile, ProfileCollector
from repro.simulator import (
    Activity,
    Compute,
    Engine,
    Machine,
    TimeSegment,
    TraceCollector,
)


def nested_prog(proc):
    with proc.function("main.c", "main"):
        yield Compute(1.0)
        with proc.function("util.c", "helper"):
            yield Compute(2.0)
            with proc.function("util.c", "inner"):
                yield Compute(3.0)
        yield Compute(0.5)


def run_nested():
    eng = Engine(Machine.named("n", 1))
    tc = TraceCollector()
    pc = ProfileCollector()
    eng.add_sink(tc)
    eng.add_sink(pc)
    eng.add_process("p", "n0", nested_prog)
    eng.run()
    return tc, pc.profile


class TestStackCapture:
    def test_stack_reflects_nesting(self):
        tc, _ = run_nested()
        deepest = max(tc.segments, key=lambda s: len(s.stack))
        assert deepest.stack == (
            ("main.c", "main"), ("util.c", "helper"), ("util.c", "inner"),
        )
        assert (deepest.module, deepest.function) == ("util.c", "inner")

    def test_top_level_stack_single_frame(self):
        tc, _ = run_nested()
        top = [s for s in tc.segments if s.function == "main"]
        assert all(s.stack == (("main.c", "main"),) for s in top)

    def test_default_stack_from_make(self):
        seg = TimeSegment.make(0, 1.0, Activity.COMPUTE, "p", "n", "m.c", "f")
        assert seg.stack == (("m.c", "f"),)


class TestInclusiveAttribution:
    def test_exclusive_vs_inclusive(self):
        _, profile = run_nested()
        # exclusive: main holds only its own 1.5s
        assert profile.code_exec_fraction("/Code/main.c/main") == pytest.approx(1.5 / 6.5)
        # inclusive: main is on every stack -> the entire execution
        assert profile.code_inclusive_fraction("/Code/main.c/main") == pytest.approx(1.0)

    def test_inclusive_intermediate_frame(self):
        _, profile = run_nested()
        # helper covers its own 2s plus inner's 3s
        assert profile.code_inclusive_fraction("/Code/util.c/helper") == pytest.approx(5.0 / 6.5)

    def test_leaf_inclusive_equals_exclusive(self):
        _, profile = run_nested()
        assert profile.code_inclusive_fraction("/Code/util.c/inner") == pytest.approx(
            profile.code_exec_fraction("/Code/util.c/inner")
        )

    def test_inclusive_always_geq_exclusive(self):
        _, profile = run_nested()
        for name in profile.by_code:
            assert (
                profile.code_inclusive_fraction(name)
                >= profile.code_exec_fraction(name) - 1e-12
            )

    def test_recursive_frame_counted_once(self):
        prof = FlatProfile()
        seg = TimeSegment.make(
            0, 2.0, Activity.COMPUTE, "p", "n", "m.c", "f",
            stack=(("m.c", "f"), ("m.c", "g"), ("m.c", "f")),
        )
        prof.add(seg)
        # f appears twice on the stack but is charged once
        assert prof.by_code_inclusive["/Code/m.c/f"]["compute"] == pytest.approx(2.0)

    def test_serialization_roundtrip(self):
        _, profile = run_nested()
        clone = FlatProfile.from_dict(profile.to_dict())
        assert clone.code_inclusive_fraction("/Code/util.c/helper") == pytest.approx(
            profile.code_inclusive_fraction("/Code/util.c/helper")
        )


class TestTraceStackRoundtrip:
    def test_stack_survives_trace_file(self, tmp_path):
        from repro.simulator import read_trace, write_trace

        tc, _ = run_nested()
        path = tmp_path / "nested.trace"
        write_trace(path, tc.segments)
        back = list(read_trace(path))
        deepest = max(back, key=lambda s: len(s.stack))
        assert deepest.stack == (
            ("main.c", "main"), ("util.c", "helper"), ("util.c", "inner"),
        )
