"""Tests for raw trace files and trace-driven postmortem extraction."""

import pytest

from repro.apps.synthetic import make_pingpong
from repro.core import extract_directives_postmortem
from repro.core.shg import Priority
from repro.resources import whole_program
from repro.simulator import (
    Activity,
    TimeSegment,
    TraceWriter,
    profile_from_trace,
    read_trace,
    write_trace,
)

SYNC = "ExcessiveSyncWaitingTime"


def segs():
    return [
        TimeSegment.make(0.0, 2.0, Activity.COMPUTE, "p:1", "n0", "m.c", "f"),
        TimeSegment.make(2.0, 3.0, Activity.SYNC, "p:1", "n0", "m.c", "g", tag="3/0"),
        TimeSegment.make(0.0, 5.0, Activity.IO, "p:2", "n1", "m.c", "h"),
    ]


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "run.trace"
        n = write_trace(path, segs())
        assert n == 3
        back = list(read_trace(path))
        assert len(back) == 3
        assert back[0].duration == pytest.approx(2.0)
        assert back[1].tag == "3/0"
        assert back[1].parts["SyncObject"] == ("SyncObject", "Message", "3", "0")
        assert back[2].activity is Activity.IO

    def test_writer_as_sink(self, tmp_path):
        from repro.simulator import Compute, Engine, Machine

        path = tmp_path / "live.trace"
        eng = Engine(Machine.named("n", 1))
        with TraceWriter(path) as writer:
            eng.add_sink(writer)

            def prog(proc):
                with proc.function("m.c", "f"):
                    yield Compute(1.0)
                    yield Compute(2.0)

            eng.add_process("p", "n0", prog)
            eng.run()
        assert writer.count == 2
        profile = profile_from_trace(path)
        assert profile.totals["compute"] == pytest.approx(3.0)

    def test_profile_from_trace_matches_direct(self, tmp_path):
        from repro.metrics.profile import FlatProfile

        path = tmp_path / "t.trace"
        write_trace(path, segs())
        via_trace = profile_from_trace(path)
        direct = FlatProfile()
        for s in segs():
            direct.add(s)
        assert via_trace.to_dict() == direct.to_dict()

    def test_empty_and_blank_lines(self, tmp_path):
        path = tmp_path / "e.trace"
        path.write_text("\n\n")
        assert list(read_trace(path)) == []


class TestTraceDrivenExtraction:
    def test_directives_from_foreign_trace(self, tmp_path):
        """End-to-end future-work scenario: a run is recorded only as a raw
        trace (as 'a different monitoring tool' would produce), and search
        directives are extracted from it postmortem."""
        from repro.core import SearchConfig, run_diagnosis
        from repro.metrics import CostModel

        app = make_pingpong(iterations=100, slow=1.0, fast=0.2)
        engine = app.make_engine()
        path = tmp_path / "foreign.trace"
        with TraceWriter(path) as writer:
            engine.add_sink(writer)
            engine.run()

        profile = profile_from_trace(path)
        space = app.make_space()
        ds = extract_directives_postmortem(profile, space, dict(app.placement))
        levels = {(p.hypothesis, str(p.focus)): p.level for p in ds.priorities}
        assert levels[(SYNC, str(whole_program(space)))] is Priority.HIGH
