"""Correctness of the history-query fast path: record memoization, the
store's LRU record cache, format-3 index summaries, and batched loads."""

import json

import pytest

from repro.storage import ExperimentStore, RunRecord, StoreError, summarize_record
from repro.storage.store import StoreCorruption


def make_record(run_id="r1", app_name="app", version="1", **overrides):
    fields = dict(
        run_id=run_id,
        app_name=app_name,
        version=version,
        n_processes=2,
        nodes=["n0", "n1"],
        placement={"p0": "n0", "p1": "n1"},
        hierarchies={
            "Code": ["/Code", "/Code/a.c", "/Code/a.c/main", "/Code/a.c/tiny"],
            "Process": ["/Process", "/Process/p0", "/Process/p1"],
            "Machine": ["/Machine", "/Machine/n0", "/Machine/n1"],
            "SyncObject": ["/SyncObject"],
        },
        shg_nodes=[
            {
                "id": 0, "hypothesis": "CPUbound", "focus": "< /Code/a.c/main, /Machine, /Process, /SyncObject >",
                "state": "true", "priority": "medium", "persistent": False,
                "value": 0.4, "t_requested": 0.0, "t_concluded": 5.0,
                "quality": None, "parents": [], "children": [],
            },
            {
                "id": 1, "hypothesis": "ExcessiveIOBlockingTime",
                "focus": "< /Code/a.c/tiny, /Machine, /Process, /SyncObject >",
                "state": "false", "priority": "medium", "persistent": False,
                "value": 0.01, "t_requested": 0.0, "t_concluded": 6.0,
                "quality": None, "parents": [], "children": [],
            },
        ],
        profile={
            "by_code": {
                "/Code/a.c/main": {"compute": 9.0},
                "/Code/a.c/tiny": {"compute": 0.01},
            },
            "by_process": {"/Process/p0": {"sync": 1.0}},
            "by_node": {"/Machine/n0": {"sync": 0.5}},
            "by_tag": {},
            "totals": {"compute": 10.0},
            "elapsed": 10.0,
        },
        finish_time=10.0,
        search_done_time=6.0,
        pairs_tested=2,
        total_requests=2,
        peak_cost=1.5,
    )
    fields.update(overrides)
    return RunRecord(**fields)


# ---------------------------------------------------------------------------
# RunRecord memoization
# ---------------------------------------------------------------------------
class TestRecordMemoization:
    def test_reconstructions_are_cached(self):
        rec = make_record()
        assert rec.flat_profile() is rec.flat_profile()
        assert rec.shg() is rec.shg()
        assert rec.space() is rec.space()

    def test_field_reassignment_invalidates(self):
        rec = make_record()
        before = rec.flat_profile()
        rec.profile = dict(rec.profile, totals={"compute": 20.0})
        after = rec.flat_profile()
        assert after is not before
        assert after.total_time() == pytest.approx(20.0)
        # unrelated caches survive the reassignment
        assert rec.shg() is rec.shg()

    def test_each_backing_field_invalidates_its_own_cache(self):
        rec = make_record()
        shg, space = rec.shg(), rec.space()
        rec.shg_nodes = list(rec.shg_nodes[:1])
        assert rec.shg() is not shg
        assert rec.space() is space
        rec.hierarchies = dict(rec.hierarchies)
        assert rec.space() is not space

    def test_invalidate_caches_after_inplace_mutation(self):
        rec = make_record()
        before = rec.shg()
        rec.shg_nodes.append(dict(rec.shg_nodes[0], id=2))
        assert rec.shg() is before  # in-place mutation is invisible...
        rec.invalidate_caches()
        assert len(rec.shg()) == 3  # ...until caches are dropped

    def test_memo_not_serialised(self):
        rec = make_record()
        rec.flat_profile()
        assert "_memo" not in rec.to_dict()
        assert rec.to_dict() == make_record().to_dict()


# ---------------------------------------------------------------------------
# store record cache
# ---------------------------------------------------------------------------
class TestStoreCache:
    def test_repeat_load_hits_cache(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        first = store.load("r1")
        assert store.load("r1") is first
        assert store.cache_info()["hits"] >= 1

    def test_save_primes_cache(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        rec = make_record()
        store.save(rec)
        assert store.load("r1") is rec

    def test_cache_disabled(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", cache_size=0)
        store.save(make_record())
        assert store.load("r1") is not store.load("r1")
        assert store.cache_info()["size"] == 0

    def test_lru_bound(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", cache_size=2)
        for i in range(4):
            store.save(make_record(run_id=f"r{i}"))
        assert store.cache_info()["size"] == 2

    def test_overwrite_after_load_returns_new_record(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        store.load("r1")
        store.save(make_record(version="2"), overwrite=True)
        assert store.load("r1").version == "2"

    def test_cross_instance_overwrite_invalidates(self, tmp_path):
        a = ExperimentStore(tmp_path / "runs")
        b = ExperimentStore(tmp_path / "runs")
        a.save(make_record())
        assert b.load("r1").version == "1"
        a.save(make_record(version="2"), overwrite=True)
        # b never coordinated with a, but the record file's stat
        # signature changed with the atomic rename
        assert b.load("r1").version == "2"

    def test_delete_evicts(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        store.load("r1")
        store.delete("r1")
        with pytest.raises(StoreError):
            store.load("r1")

    def test_corruption_quarantines_despite_cache(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        store.load("r1")
        path = tmp_path / "runs" / "r1.json"
        data = json.loads(path.read_text())
        data["record"]["pairs_tested"] = 999  # breaks the checksum
        path.write_text(json.dumps(data))
        with pytest.raises(StoreCorruption):
            store.load("r1")
        assert (tmp_path / "runs" / "quarantine" / "r1.json").exists()
        with pytest.raises(StoreError):
            store.load("r1")


# ---------------------------------------------------------------------------
# load_many
# ---------------------------------------------------------------------------
class TestLoadMany:
    def test_order_preserved_with_mixed_hits(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", cache_size=2)
        ids = [f"r{i}" for i in range(5)]
        for run_id in ids:
            store.save(make_record(run_id=run_id))
        got = store.load_many(list(reversed(ids)))
        assert [r.run_id for r in got] == list(reversed(ids))

    def test_process_pool_parsing(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", cache_size=0)
        ids = [f"r{i}" for i in range(6)]
        for run_id in ids:
            store.save(make_record(run_id=run_id))
        got = store.load_many(ids, processes=2)
        assert [r.run_id for r in got] == ids
        assert got[0].to_dict() == make_record(run_id="r0").to_dict()

    def test_missing_run_raises(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        with pytest.raises(StoreError):
            store.load_many(["r1", "ghost"])

    def test_corrupt_file_quarantined(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", cache_size=0)
        store.save(make_record())
        (tmp_path / "runs" / "r1.json").write_text("not json")
        with pytest.raises(StoreCorruption):
            store.load_many(["r1"])
        assert (tmp_path / "runs" / "quarantine" / "r1.json").exists()


# ---------------------------------------------------------------------------
# format-3 index summaries
# ---------------------------------------------------------------------------
def strip_to_format2(root):
    """Rewrite the on-disk index as a legacy bare mapping, no summaries."""
    index_path = root / "index.json"
    data = json.loads(index_path.read_text())
    runs = data["runs"] if "runs" in data and "format" in data else data
    for meta in runs.values():
        meta.pop("summary", None)
    index_path.write_text(json.dumps(runs))


class TestIndexSummaries:
    def test_save_writes_format3_envelope_with_summary(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        # the save landed in an append-only index segment; compaction
        # folds it into the format-3 base envelope
        assert store.info().segments == 1
        store.compact()
        data = json.loads((tmp_path / "runs" / "index.json").read_text())
        assert data["format"] == 3
        summary = data["runs"]["r1"]["summary"]
        assert summary["true_pairs"] == [[
            "CPUbound", "< /Code/a.c/main, /Machine, /Process, /SyncObject >",
        ]]
        assert summary["duration"] == pytest.approx(10.0)

    def test_summarize_record_fractions(self):
        summary = summarize_record(make_record())
        assert summary["total_time"] == pytest.approx(10.0)
        assert summary["fractions"]["Code"]["/Code/a.c/main"]["compute"] == (
            pytest.approx(0.9)
        )
        assert summary["code_exec_fractions"]["/Code/a.c/tiny"] == (
            pytest.approx(0.001)
        )
        assert summary["code_leaves"] == ["/Code/a.c/main", "/Code/a.c/tiny"]
        assert summary["hyp_values"] == {
            "CPUbound": [0.4], "ExcessiveIOBlockingTime": [0.01],
        }

    def test_format2_store_loads_transparently(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        strip_to_format2(tmp_path / "runs")
        fresh = ExperimentStore(tmp_path / "runs")
        assert fresh.list() == ["r1"]
        assert fresh.load("r1").run_id == "r1"

    def test_lazy_backfill_upgrades_index(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        store.compact()  # fold the save into index.json for the strip
        strip_to_format2(tmp_path / "runs")
        fresh = ExperimentStore(tmp_path / "runs")
        metas = fresh.summaries()
        assert metas["r1"]["summary"]["status"] == "complete"
        # the computed summary was written back: a brand-new instance
        # (fresh caches) sees it on disk without recomputing
        ExperimentStore(tmp_path / "runs").compact()
        data = json.loads((tmp_path / "runs" / "index.json").read_text())
        assert data["format"] == 3
        assert "summary" in data["runs"]["r1"]

    def test_single_summary_backfill(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        store.compact()
        strip_to_format2(tmp_path / "runs")
        fresh = ExperimentStore(tmp_path / "runs")
        assert fresh.summary("r1")["peak_cost"] == pytest.approx(1.5)
        ExperimentStore(tmp_path / "runs").compact()
        data = json.loads((tmp_path / "runs" / "index.json").read_text())
        assert "summary" in data["runs"]["r1"]

    def test_summary_matches_record(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        rec = make_record()
        store.save(rec)
        assert store.summary("r1") == summarize_record(rec)

    def test_rebuild_index_roundtrips_to_format3(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record())
        strip_to_format2(tmp_path / "runs")
        report = ExperimentStore(tmp_path / "runs").rebuild_index()
        assert report.count == 1
        data = json.loads((tmp_path / "runs" / "index.json").read_text())
        assert data["format"] == 3
        assert data["runs"]["r1"]["summary"] == summarize_record(make_record())

    def test_summaries_filter_and_order(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        store.save(make_record(run_id="a1", app_name="x"))
        store.save(make_record(run_id="b1", app_name="y"))
        store.save(make_record(run_id="a2", app_name="x"))
        assert list(store.summaries(app_name="x")) == ["a1", "a2"]
        assert list(store.summaries(run_ids=["a2", "b1"])) == ["a2", "b1"]

    def test_missing_run_summary_raises(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs")
        with pytest.raises(StoreError):
            store.summary("ghost")
