"""Scale tests: the substrate at sizes beyond the paper's 8 nodes."""

import pytest

from repro.apps.base import Application
from repro.apps.poisson import PoissonConfig, build_poisson
from repro.core import SearchConfig, run_diagnosis
from repro.metrics import CostModel
from repro.simulator import Compute, Engine, LatencyModel, Machine, TraceCollector
from repro.simulator.collectives import allreduce

LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)


class TestManyProcesses:
    def test_32_process_allreduce_app(self):
        n = 32
        eng = Engine(Machine.named("n", n), latency=LAT)
        tc = TraceCollector()
        eng.add_sink(tc)
        procs = [f"w:{i}" for i in range(n)]

        def make(rank):
            def program(proc):
                with proc.function("m.c", "step"):
                    for _ in range(5):
                        yield Compute(0.5 + 0.01 * rank)
                        yield from allreduce(proc, rank, procs, tag="4/0")

            return program

        for i, name in enumerate(procs):
            eng.add_process(name, f"n{i}", make(i))
        t = eng.run()
        # each round ends when the slowest rank (31) contributes
        assert t == pytest.approx(5 * (0.5 + 0.01 * 31), rel=1e-6)

    def test_diagnosis_of_16_process_app(self):
        # Poisson D's config extended to 16 ranks via the cycling factors
        cfg = PoissonConfig(iterations=60)
        app = build_poisson("D", cfg)
        assert app.n_processes == 8
        rec = run_diagnosis(
            app,
            config=SearchConfig(min_interval=10.0, check_period=1.0,
                                insertion_latency=0.5, cost_limit=10.0,
                                stop_engine_when_done=True),
        )
        assert rec.pairs_tested > 0
        assert rec.n_processes == 8

    def test_engine_event_volume(self):
        """A hundred processes exchanging in a ring completes and conserves
        per-process time."""
        n = 100
        eng = Engine(Machine.named("n", n), latency=LAT)
        tc = TraceCollector()
        eng.add_sink(tc)
        from repro.simulator import Recv, Send

        def make(rank):
            nxt = f"r:{(rank + 1) % n}"
            prev = f"r:{(rank - 1) % n}"

            def program(proc):
                with proc.function("ring.c", "spin"):
                    for _ in range(3):
                        yield Compute(0.1)
                        yield Send(nxt, "1/0", 8)
                        yield Recv(prev, "1/0")

            return program

        for i in range(n):
            eng.add_process(f"r:{i}", f"n{i}", make(i))
        t = eng.run()
        compute_total = tc.total()
        assert compute_total >= n * 3 * 0.1 - 1e-9
