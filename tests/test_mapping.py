"""Tests for resource mapping across executions."""

import pytest

from repro.core.directives import (
    DirectiveSet,
    MapDirective,
    PairPruneDirective,
    PriorityDirective,
    PruneDirective,
    ThresholdDirective,
)
from repro.core.mapping import ResourceMapper, apply_mappings
from repro.core.shg import Priority
from repro.resources import ResourceSpace, whole_program

SYNC = "ExcessiveSyncWaitingTime"


def focus(**sels):
    f = whole_program()
    for h, p in sels.items():
        f = f.with_selection(h, p)
    return f


class TestResourceMapper:
    def test_module_prefix_rewrite(self):
        m = ResourceMapper([MapDirective("/Code/oned.f", "/Code/onednb.f")])
        assert m.map_path("/Code/oned.f") == "/Code/onednb.f"
        assert m.map_path("/Code/oned.f/main") == "/Code/onednb.f/main"

    def test_longest_prefix_wins(self):
        m = ResourceMapper([
            MapDirective("/Code/sweep.f", "/Code/nbsweep.f"),
            MapDirective("/Code/sweep.f/sweep1d", "/Code/nbsweep.f/nbsweep"),
        ])
        assert m.map_path("/Code/sweep.f/sweep1d") == "/Code/nbsweep.f/nbsweep"
        assert m.map_path("/Code/sweep.f/other") == "/Code/nbsweep.f/other"

    def test_unmapped_unchanged(self):
        m = ResourceMapper([MapDirective("/Code/a.c", "/Code/b.c")])
        assert m.map_path("/Machine/n0") == "/Machine/n0"

    def test_component_boundary(self):
        m = ResourceMapper([MapDirective("/Code/a", "/Code/zz")])
        assert m.map_path("/Code/ab") == "/Code/ab"  # not a component prefix

    def test_map_focus(self):
        m = ResourceMapper([MapDirective("/Machine/node00", "/Machine/node04")])
        f = m.map_focus(focus(Machine="/Machine/node00"))
        assert f.selection("Machine") == "/Machine/node04"

    def test_empty_mapper_identity(self):
        m = ResourceMapper()
        assert m.map_path("/Code/a.c") == "/Code/a.c"
        assert len(m) == 0


class TestApplyMappings:
    def space(self):
        s = ResourceSpace()
        s.add("/Code/onednb.f/main")
        s.add("/Machine/node04")
        s.add("/Process/p:1")
        s.add("/SyncObject/Message/1/0")
        return s

    def test_directives_rewritten(self):
        ds = DirectiveSet(
            priorities=[PriorityDirective(SYNC, focus(Code="/Code/oned.f/main"), Priority.HIGH)],
            maps=[MapDirective("/Code/oned.f", "/Code/onednb.f")],
        )
        out, report = apply_mappings(ds, self.space())
        assert len(out.priorities) == 1
        assert out.priorities[0].focus.selection("Code") == "/Code/onednb.f/main"
        assert report.mapped == 1 and not report.dropped

    def test_unknown_resources_dropped(self):
        ds = DirectiveSet(
            priorities=[PriorityDirective(SYNC, focus(Code="/Code/gone.c"), Priority.HIGH)],
            prunes=[PruneDirective("*", "/Code/alsogone.c")],
        )
        out, report = apply_mappings(ds, self.space())
        assert not out.priorities and not out.prunes
        assert len(report.dropped) == 2

    def test_no_space_keeps_everything(self):
        ds = DirectiveSet(
            prunes=[PruneDirective("*", "/Code/anything.c")],
            maps=[MapDirective("/Code/anything.c", "/Code/renamed.c")],
        )
        out, _ = apply_mappings(ds, space=None)
        assert out.prunes[0].resource == "/Code/renamed.c"

    def test_extra_maps(self):
        ds = DirectiveSet(
            prunes=[PruneDirective("*", "/Machine/node00")],
        )
        out, _ = apply_mappings(
            ds, self.space(), extra_maps=[MapDirective("/Machine/node00", "/Machine/node04")]
        )
        assert out.prunes[0].resource == "/Machine/node04"

    def test_thresholds_pass_through(self):
        ds = DirectiveSet(thresholds=[ThresholdDirective(SYNC, 0.12)])
        out, _ = apply_mappings(ds, self.space())
        assert out.threshold_of(SYNC) == pytest.approx(0.12)

    def test_pair_prunes_mapped(self):
        ds = DirectiveSet(
            pair_prunes=[PairPruneDirective(SYNC, focus(Code="/Code/oned.f/main"))],
            maps=[MapDirective("/Code/oned.f", "/Code/onednb.f")],
        )
        out, _ = apply_mappings(ds, self.space())
        assert out.pair_prunes[0].focus.selection("Code") == "/Code/onednb.f/main"

    def test_tag_family_mapping(self):
        space = ResourceSpace()
        space.add("/SyncObject/Message/3/0")
        space.add("/Code/a.c")
        space.add("/Machine/n0")
        space.add("/Process/p:1")
        ds = DirectiveSet(
            priorities=[
                PriorityDirective(SYNC, focus(SyncObject="/SyncObject/Message/1/0"), Priority.HIGH)
            ],
            maps=[MapDirective("/SyncObject/Message/1", "/SyncObject/Message/3")],
        )
        out, _ = apply_mappings(ds, space)
        assert out.priorities[0].focus.selection("SyncObject") == "/SyncObject/Message/3/0"
