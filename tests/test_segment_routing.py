"""Property and unit tests for the ``record()`` routing index.

The online hot path delivers each simulated time segment through a
(activity, Code selection, Process selection) bucket index instead of
scanning every active probe.  The legacy scan survives as a reference
path (``routing_enabled=False``); the property tests here drive both
paths with identical random probe sets, segment streams, and mid-stream
request/delete churn, and require *byte-identical* accumulated values —
the same guarantee the benchmark asserts before timing.

Also covered: routing-index maintenance on delete, the bounded identity
memos, segment-parts interning, matched-process recounts after late
process discovery, the descriptive lost-handle error, batched
``in_progress`` snapshots, and the ``progress_every`` trace knob.
"""

import random

import pytest

from repro.apps.synthetic import make_pingpong
from repro.core import SearchConfig, run_diagnosis
from repro.metrics import CostModel, InstrumentationManager
from repro.metrics import instrumentation as instr_mod
from repro.obs import Tracer, deterministic_metrics
from repro.resources import ResourceSpace, whole_program
from repro.simulator import Engine, LatencyModel, Machine
from repro.simulator import records as records_mod
from repro.simulator.records import Activity, TimeSegment, intern_parts

LAT = LatencyModel(alpha=0.0, beta=0.0, send_overhead=0.0, recv_overhead=0.0)
METRIC_NAMES = (
    "exec_time", "cpu_time", "sync_wait_time", "io_wait_time",
    "sync_op_count", "io_op_count",
)
TAGS = ("3/0", "3/1", "9/0", "Barrier")


def idle(proc):
    return iter(())


def build_world(rng):
    """One engine + resource space + twin managers (routed and scan)."""
    n_procs = rng.randint(2, 8)
    n_nodes = rng.randint(1, n_procs)
    n_modules = rng.randint(1, 4)
    fns_per_module = rng.randint(1, 5)
    procs = [f"p:{i + 1}" for i in range(n_procs)]
    nodes = [f"n{i}" for i in range(n_nodes)]
    modules = [f"m{i}.c" for i in range(n_modules)]
    leaves = [
        (m, f"fn{i}_{k}")
        for i, m in enumerate(modules)
        for k in range(fns_per_module)
    ]

    engine = Engine(Machine.named("n", n_nodes), latency=LAT)
    for i, p in enumerate(procs):
        engine.add_process(p, nodes[i % n_nodes], idle)
    space = ResourceSpace()
    for mod, fn in leaves:
        space.add(f"/Code/{mod}/{fn}")
    for p in procs:
        space.add(f"/Process/{p}")
    for tag in TAGS:
        parts = records_mod.sync_tag_parts(tag)
        space.add("/" + "/".join(parts))
    latency = rng.choice([0.0, 0.5])

    def manager(routed):
        return InstrumentationManager(
            engine, space,
            cost_model=CostModel(perturb_per_unit=0.0),
            cost_limit=1e9,
            insertion_latency=latency,
            routing_enabled=routed,
        )

    return {
        "engine": engine,
        "space": space,
        "procs": procs,
        "nodes": nodes,
        "leaves": leaves,
        "routed": manager(True),
        "scan": manager(False),
    }


def random_focus(rng, world):
    focus = whole_program(world["space"])
    if rng.random() < 0.7:
        mod, fn = rng.choice(world["leaves"])
        path = f"/Code/{mod}" if rng.random() < 0.3 else f"/Code/{mod}/{fn}"
        focus = focus.with_selection("Code", path)
    if rng.random() < 0.4:
        focus = focus.with_selection("Process", f"/Process/{rng.choice(world['procs'])}")
    if rng.random() < 0.2:
        focus = focus.with_selection("Machine", f"/Machine/{rng.choice(world['nodes'])}")
    if rng.random() < 0.2:
        tag = rng.choice(TAGS)
        parts = records_mod.sync_tag_parts(tag)
        depth = rng.randint(2, len(parts))
        focus = focus.with_selection("SyncObject", "/" + "/".join(parts[:depth]))
    return focus


def random_segment(rng, world, start):
    rank = rng.randrange(len(world["procs"]))
    mod, fn = rng.choice(world["leaves"])
    activity = rng.choice([Activity.COMPUTE, Activity.SYNC, Activity.IO])
    tag = rng.choice(TAGS) if activity is Activity.SYNC else None
    return TimeSegment.make(
        start=start,
        duration=rng.random() * 0.5,
        activity=activity,
        process=world["procs"][rank],
        node=world["nodes"][rank % len(world["nodes"])],
        module=mod,
        function=fn,
        tag=tag,
    )


class TestRoutedScanEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_streams_accumulate_byte_identical(self, seed):
        """Random probes, random segments, random mid-stream churn: the
        routed and scan paths must agree bit-for-bit on every probe."""
        rng = random.Random(seed)
        world = build_world(rng)
        routed, scan = world["routed"], world["scan"]
        probes = {}  # handle -> (routed instr, scan instr)

        def request():
            focus = random_focus(rng, world)
            metric = rng.choice(METRIC_NAMES)
            persistent = rng.random() < 0.2
            h1 = routed.request(metric, focus, persistent=persistent)
            h2 = scan.request(metric, focus, persistent=persistent)
            assert h1 == h2
            probes[h1] = (routed.instrumentation(h1), scan.instrumentation(h1))

        for _ in range(rng.randint(5, 25)):
            request()
        start = 0.0
        for _ in range(1500):
            roll = rng.random()
            if roll < 0.02:
                request()
            elif roll < 0.04 and routed.active_count:
                handle = rng.choice(sorted(
                    h for h in probes if h in routed._active))
                routed.delete(handle)
                scan.delete(handle)
            else:
                seg = random_segment(rng, world, start)
                start += rng.random() * 0.05
                routed.record(seg)
                scan.record(seg)

        assert probes
        for handle, (fast, legacy) in probes.items():
            assert fast.accumulated == legacy.accumulated, handle
            assert fast.processes == legacy.processes, handle
        # the routed path must actually have routed (and examined fewer
        # probes than the full scan did)
        assert routed.segments_routed == scan.segments_scanned > 0
        assert routed.probes_examined <= scan.probes_examined

    def test_full_diagnosis_records_identical(self):
        """End to end: a real diagnosis reaches identical conclusions,
        profile, and SHG whichever delivery path runs."""
        def run(routing):
            rec = run_diagnosis(
                make_pingpong(iterations=40), run_id="x",
                segment_routing=routing,
            ).to_dict()
            metrics = deterministic_metrics(rec["metrics"])
            # delivery-cost accounting legitimately differs by path
            for key in ("segments_routed", "segments_scanned", "probes_examined"):
                metrics.pop(key)
            rec["metrics"] = metrics
            return rec

        assert run(True) == run(False)


class TestRoutingIndexMaintenance:
    def build(self):
        rng = random.Random(99)
        world = build_world(rng)
        return world, world["routed"]

    def test_delete_clears_buckets(self):
        world, mgr = self.build()
        handles = [
            mgr.request("cpu_time", random_focus(random.Random(i), world))
            for i in range(10)
        ]
        assert mgr._route
        for h in handles:
            mgr.delete(h)
        assert mgr._route == {}

    def test_deleted_probe_stops_accumulating(self):
        world, mgr = self.build()
        mod, fn = world["leaves"][0]
        focus = whole_program(world["space"]).with_selection(
            "Code", f"/Code/{mod}/{fn}")
        handle = mgr.request("cpu_time", focus)
        instr = mgr.instrumentation(handle)
        seg = TimeSegment.make(
            start=1.0, duration=0.5, activity=Activity.COMPUTE,
            process=world["procs"][0], node=world["nodes"][0],
            module=mod, function=fn,
        )
        mgr.record(seg)
        before = instr.accumulated
        assert before > 0.0
        mgr.delete(handle)
        mgr.record(seg)
        assert instr.accumulated == before

    def test_match_memo_stays_bounded(self, monkeypatch):
        monkeypatch.setattr(instr_mod, "_MEMO_MAX", 16)
        rng = random.Random(7)
        world = build_world(rng)
        routed, scan = world["routed"], world["scan"]
        handle = routed.request("exec_time", random_focus(rng, world))
        scan.request("exec_time", random_focus(random.Random(7), world))
        for i in range(200):
            seg = random_segment(rng, world, float(i))
            routed.record(seg)
            assert len(routed._match_memo) <= 16
            assert len(routed._prefix_memo) <= 16
        assert routed.instrumentation(handle).accumulated >= 0.0

    def test_intern_parts_shares_and_bounds(self, monkeypatch):
        a = intern_parts("p:1", "n0", "m.c", "f", None)
        b = intern_parts("p:1", "n0", "m.c", "f", None)
        assert a is b
        assert a["Code"] == ("Code", "m.c", "f")
        monkeypatch.setattr(records_mod, "_PARTS_CACHE_MAX", 4)
        records_mod._PARTS_CACHE.clear()
        for i in range(40):
            intern_parts(f"p:{i}", "n0", "m.c", "f", None)
            assert len(records_mod._PARTS_CACHE) <= 4


class TestProcessTableSync:
    def test_late_discovery_recounts_matched_processes(self):
        engine = Engine(Machine.named("n", 2), latency=LAT)
        engine.add_process("p:1", "n0", idle)
        space = ResourceSpace()
        space.add("/Process/p:1")
        space.add("/Process/p:2")
        space.add("/Machine/n0")
        space.add("/Machine/n1")
        mgr = InstrumentationManager(
            engine, space, cost_model=CostModel(perturb_per_unit=0.0),
            cost_limit=1e9, insertion_latency=0.0,
        )
        handle = mgr.request("exec_time", whole_program(space))
        instr = mgr.instrumentation(handle)
        assert instr.processes == ("p:1",)
        charged = instr.charged
        engine.add_process("p:2", "n1", idle)
        mgr.normalized_read(handle)  # triggers the version-gated recount
        assert instr.processes == ("p:1", "p:2")
        # the cost charge is frozen at the request-time set
        assert instr.charged == charged == ("p:1",)

    def test_lost_handle_error_is_descriptive(self):
        engine = Engine(Machine.named("n", 1), latency=LAT)
        engine.add_process("p:1", "n0", idle)
        space = ResourceSpace()
        space.add("/Process/p:1")
        mgr = InstrumentationManager(engine, space)
        with pytest.raises(KeyError, match="unknown or deleted instrumentation handle 12345"):
            mgr.normalized_read(12345)
        with pytest.raises(KeyError, match="unknown or deleted instrumentation handle 12345"):
            mgr.read(12345)


class TestBatchedReads:
    def test_one_snapshot_per_pass(self):
        from repro.simulator import Compute

        def busy(proc):
            with proc.function("m.c", "f"):
                yield Compute(2.0)

        engine = Engine(Machine.named("n", 1), latency=LAT)
        engine.add_process("p:1", "n0", busy)
        space = ResourceSpace()
        space.add("/Process/p:1")
        space.add("/Code/m.c/f")
        mgr = InstrumentationManager(
            engine, space, cost_model=CostModel(perturb_per_unit=0.0),
            cost_limit=1e9, insertion_latency=0.0,
        )
        whole = whole_program(space)
        handles = [
            mgr.request("exec_time", whole),
            mgr.request("cpu_time", whole.with_selection("Code", "/Code/m.c/f")),
            mgr.request("sync_wait_time", whole),
        ]
        engine.run(max_time=1e9)  # reads must see elapsed > 0
        calls = {"n": 0}
        original = engine.in_progress

        def counting():
            calls["n"] += 1
            return original()

        engine.in_progress = counting
        with mgr.batched_reads():
            for h in handles:
                mgr.read(h)
        assert calls["n"] == 1
        # outside the block each read snapshots for itself again
        for h in handles:
            mgr.read(h)
        assert calls["n"] == 1 + len(handles)


class TestProgressEvery:
    def run_count(self, progress_every):
        tracer = Tracer()
        run_diagnosis(
            make_pingpong(iterations=40), run_id="x",
            config=SearchConfig(progress_every=progress_every),
            tracer=tracer,
        )
        return len(tracer.events("progress"))

    def test_progress_event_decimated(self):
        every_tick = self.run_count(1)
        every_fifth = self.run_count(5)
        assert every_tick > every_fifth >= 1
        # decimation by 5 drops all but every fifth tick's event
        assert every_fifth == every_tick // 5
