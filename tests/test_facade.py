"""Tests for the stable top-level facade (repro.diagnose / repro.harvest)."""

import pytest

from repro import diagnose, harvest
from repro.apps.synthetic import make_pingpong
from repro.core import DirectiveSet, SearchConfig, run_diagnosis
from repro.metrics import CostModel
from repro.obs import deterministic_metrics
from repro.storage import ExperimentStore, StoreError

FAST = dict(min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0)


def _app():
    return make_pingpong(iterations=60)


@pytest.fixture(scope="module")
def base_record():
    return diagnose(_app(), run_id="facade-base", **FAST)


class TestDiagnose:
    def test_matches_run_diagnosis(self, base_record):
        legacy = run_diagnosis(_app(), config=SearchConfig(**FAST), run_id="facade-base")
        a, b = legacy.to_dict(), base_record.to_dict()
        # Separate executions: only wall-clock metrics may differ.
        a["metrics"] = deterministic_metrics(a["metrics"])
        b["metrics"] = deterministic_metrics(b["metrics"])
        assert a == b

    def test_search_kwargs_reach_config(self, base_record):
        assert base_record.config["min_interval"] == 5.0
        assert base_record.config["cost_limit"] == 50.0

    def test_session_kwargs_pass_through(self):
        record = diagnose(_app(), cost_model=CostModel(perturb_per_unit=0.0), **FAST)
        assert record.pairs_tested > 0

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="wibble"):
            diagnose(_app(), wibble=3)

    def test_config_and_fields_conflict(self):
        with pytest.raises(TypeError):
            diagnose(_app(), config=SearchConfig(), min_interval=5.0)

    def test_store_path_saves(self, tmp_path):
        record = diagnose(_app(), store=tmp_path / "runs", run_id="saved", **FAST)
        assert ExperimentStore(tmp_path / "runs").load("saved").to_dict() == record.to_dict()

    def test_history_record(self, base_record):
        directed = diagnose(_app(), history=base_record, run_id="directed", **FAST)
        assert directed.pairs_tested > 0

    def test_history_directive_file(self, tmp_path, base_record):
        path = tmp_path / "base.directives"
        path.write_text(harvest(base_record).to_text())
        directed = diagnose(_app(), history=path, **FAST)
        assert directed.pairs_tested > 0

    def test_history_store_path(self, tmp_path, base_record):
        ExperimentStore(tmp_path / "runs").save(base_record)
        directed = diagnose(_app(), history=tmp_path / "runs", **FAST)
        assert directed.pairs_tested > 0

    def test_history_missing_path(self, tmp_path):
        with pytest.raises(StoreError):
            diagnose(_app(), history=tmp_path / "nope.directives", **FAST)


class TestHarvest:
    def test_single_record(self, base_record):
        directives = harvest(base_record)
        assert isinstance(directives, DirectiveSet)
        assert len(directives) > 0

    def test_record_list(self, base_record):
        assert len(harvest([base_record, base_record])) > 0

    def test_options_forward(self, base_record):
        with_thresholds = harvest(base_record, include_thresholds=True)
        without = harvest(base_record, include_thresholds=False)
        assert len(with_thresholds.thresholds) >= len(without.thresholds)
        assert not without.thresholds

    def test_store_and_app_filter(self, tmp_path, base_record):
        store = ExperimentStore(tmp_path / "runs")
        store.save(base_record)
        assert len(harvest(store, app="pingpong")) > 0
        assert len(harvest(store, app="ghost").priorities) == 0

    def test_app_object_filter(self, tmp_path, base_record):
        store = ExperimentStore(tmp_path / "runs")
        store.save(base_record)
        assert len(harvest(store, app=_app())) > 0

    def test_rejects_non_records(self):
        with pytest.raises(TypeError):
            harvest([42])

    def test_list_of_strings_is_federated(self, tmp_path):
        # Strings in a list are member store *paths* now; a path that is
        # not a store on disk is a failed member, not record history.
        with pytest.raises(StoreError, match="every member store failed"):
            with pytest.warns(Warning, match="does not exist"):
                harvest([str(tmp_path / "no-such-store")])


def test_facade_names_importable():
    import repro

    for name in ("diagnose", "harvest", "Campaign", "RunSpec", "Stage"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
    # legacy names stay exported for compatibility
    for name in ("run_diagnosis", "extract_directives", "DiagnosisSession"):
        assert name in repro.__all__
