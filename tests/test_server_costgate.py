"""Per-tenant CostGate isolation (satellite: two tenants, two caps).

Each served session owns its InstrumentationManager and hysteretic
CostGate, clamped to its tenant's cost cap.  These tests pin the
isolation property: concurrent sessions with different caps each stop
expanding at *their own* limit, and one tenant exhausting its cap never
stalls or cancels another tenant's session.
"""

import asyncio

from repro.apps.synthetic import make_pingpong
from repro.core import SearchConfig
from repro.server import DiagnosisService, SessionRequest, TenantPolicy

#: A generous requested cost budget; tenant policies clamp it down.
CONFIG = SearchConfig(min_interval=5.0, check_period=0.5,
                      insertion_latency=0.2, cost_limit=100.0)


def _request(tenant, run_id):
    return SessionRequest(
        app=make_pingpong(iterations=120), config=CONFIG,
        tenant=tenant, run_id=run_id,
    )


def _run(coro):
    return asyncio.run(coro)


class TestCostGateIsolation:
    def test_each_tenant_stops_at_its_own_cap(self):
        async def main():
            service = DiagnosisService(
                max_concurrent=4, slice_events=50,
                tenants={
                    "tight": TenantPolicy(cost_limit=3.0),
                    "roomy": TenantPolicy(cost_limit=60.0),
                },
            )
            return await asyncio.gather(
                service.submit(_request("tight", "tight-run")),
                service.submit(_request("roomy", "roomy-run")),
            )

        tight, roomy = _run(main())
        # Both sessions finish despite running concurrently.
        assert tight.status == "complete"
        assert roomy.status == "complete"
        # Each gate held at its own clamped limit, not the requested 100
        # and not the other tenant's.
        assert tight.peak_cost <= 3.0
        assert roomy.peak_cost <= 60.0
        assert tight.config["cost_limit"] == 3.0
        assert roomy.config["cost_limit"] == 60.0
        # The tight cap actually bit: the roomy session instrumented
        # strictly more than the starved one could admit.
        assert roomy.peak_cost > tight.peak_cost
        assert roomy.pairs_tested >= tight.pairs_tested

    def test_exhausted_tenant_never_stalls_the_other(self):
        """The tight tenant's gate halts its expansion almost instantly;
        the roomy session must still start, progress, and finish while
        the tight one is (repeatedly) halted."""
        events = []

        def progress(event):
            events.append(event)

        async def main():
            service = DiagnosisService(
                max_concurrent=2, slice_events=30, progress=progress,
                tenants={
                    "tight": TenantPolicy(cost_limit=1.0),
                    "roomy": TenantPolicy(cost_limit=60.0),
                },
            )
            return await asyncio.gather(
                service.submit(_request("tight", "t")),
                service.submit(_request("roomy", "r")),
            )

        tight, roomy = _run(main())
        assert tight.status == "complete"
        assert roomy.status == "complete"
        assert roomy.bottleneck_count() >= tight.bottleneck_count()
        # Interleaving proof: roomy made progress after tight started
        # and before tight finished.
        kinds = [
            (e["event"], e.get("tenant")) for e in events
            if e["event"] in ("session-started", "session-finished")
        ]
        assert kinds.index(("session-finished", "tight")) > 0
        progressed = {
            e["tenant"] for e in events if e["event"] == "session-progress"
        }
        assert "roomy" in progressed

    def test_unlimited_default_policy_untouched(self):
        async def main():
            service = DiagnosisService(
                slice_events=50,
                tenants={"tight": TenantPolicy(cost_limit=2.0)},
            )
            return await service.run(_request("anonymous", "free-run"))

        record = _run(main())
        # No policy for this tenant: the requested limit stands.
        assert record.config["cost_limit"] == 100.0
