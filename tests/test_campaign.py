"""Tests for the campaign runner: stages, executors, retries, determinism."""

import os

import pytest

from repro.apps.synthetic import make_pingpong
from repro.campaign import (
    Campaign,
    CampaignError,
    PoolExecutor,
    RunSpec,
    SerialExecutor,
    Stage,
)
from repro.core import DirectiveSet, SearchConfig
from repro.obs import deterministic_metrics
from repro.storage import ExperimentStore

FAST = SearchConfig(min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0)


def _spec(**kwargs):
    kwargs.setdefault("config", FAST)
    return RunSpec(make_pingpong, builder_kwargs={"iterations": 60}, **kwargs)


# module-level so the pool executor can pickle them
def _flaky_builder(flag_path, iterations=60):
    if not os.path.exists(flag_path):
        open(flag_path, "w").close()
        raise RuntimeError("transient failure")
    return make_pingpong(iterations=iterations)


def _always_fails(iterations=0):
    raise RuntimeError("boom")


class TestCampaignBasics:
    def test_single_stage_convenience(self):
        result = Campaign(specs=[_spec(), _spec()], name="c").run()
        assert [r.run_id for r in result.records] == ["c-runs-000", "c-runs-001"]
        assert not result.failures
        assert result.wall > 0

    def test_explicit_run_ids_kept(self):
        result = Campaign(specs=[_spec(run_id="mine")]).run()
        assert result.records[0].run_id == "mine"

    def test_store_persistence(self, tmp_path):
        Campaign(specs=[_spec()], name="c").run(store=tmp_path / "runs")
        store = ExperimentStore(tmp_path / "runs")
        assert store.list() == ["c-runs-000"]

    def test_progress_events(self):
        events = []
        Campaign(specs=[_spec()], name="c").run(progress=events.append)
        kinds = [e["event"] for e in events]
        assert kinds == ["stage-started", "run-finished", "stage-finished"]
        finished = events[1]
        assert finished["run_id"] == "c-runs-000"
        assert finished["wall"] > 0
        assert finished["pairs_tested"] > 0

    def test_workers_shortcut(self):
        result = Campaign(specs=[_spec(), _spec()], name="c").run(workers=2)
        assert len(result.records) == 2


class TestValidation:
    def test_needs_stages_or_specs(self):
        with pytest.raises(CampaignError):
            Campaign()
        with pytest.raises(CampaignError):
            Campaign([Stage("a", [_spec()])], specs=[_spec()])

    def test_duplicate_stage_names(self):
        with pytest.raises(CampaignError):
            Campaign([Stage("a", [_spec()]), Stage("a", [_spec()])])

    def test_directives_from_must_be_earlier(self):
        with pytest.raises(CampaignError):
            Campaign([Stage("a", [_spec()], directives_from="b")])
        with pytest.raises(ValueError):
            Stage("a", [_spec()], directives_from="a")


class TestPipeline:
    def test_extraction_barrier_injects_directives(self):
        campaign = Campaign(
            [
                Stage("baseline", [_spec()]),
                Stage("directed", [_spec()], directives_from="baseline"),
            ],
            name="p",
        )
        result = campaign.run()
        directed = result.stage("directed")
        assert directed.harvested is not None
        assert len(directed.harvested) > 0
        assert len(directed.ok) == 1

    def test_explicit_directives_win(self):
        own = DirectiveSet()
        campaign = Campaign(
            [
                Stage("baseline", [_spec()]),
                Stage("directed", [_spec(directives=own)], directives_from="baseline"),
            ],
            name="p",
        )
        # the stage still harvests, but the explicit (empty) set is used:
        # the directed run tests at least as many pairs as the baseline
        result = campaign.run()
        base = result.stage("baseline").ok[0]
        directed = result.stage("directed").ok[0]
        assert directed.pairs_tested >= base.pairs_tested

    def test_harvest_from_all_failed_stage_raises(self, tmp_path):
        campaign = Campaign(
            [
                Stage("baseline", [RunSpec(_always_fails)]),
                Stage("directed", [_spec()], directives_from="baseline"),
            ],
        )
        with pytest.raises(CampaignError):
            campaign.run()


class TestRetries:
    def test_transient_failure_retried_once(self, tmp_path):
        flag = tmp_path / "flaky.flag"
        spec = RunSpec(
            _flaky_builder, builder_args=(str(flag),),
            builder_kwargs={"iterations": 60}, config=FAST,
        )
        events = []
        result = Campaign(specs=[spec], name="r").run(progress=events.append)
        assert not result.failures
        assert result.stage("runs").retried == ["r-runs-000"]
        assert "run-retried" in [e["event"] for e in events]
        assert len(result.records) == 1

    def test_permanent_failure_recorded(self):
        result = Campaign(specs=[RunSpec(_always_fails), _spec()], name="r").run()
        assert result.failures == {"r-runs-000": "boom"}
        stage = result.stage("runs")
        assert stage.records[0] is None
        assert stage.records[1] is not None
        assert len(result.records) == 1

    def test_no_retries(self):
        result = Campaign(specs=[RunSpec(_always_fails)], name="r", retries=0).run()
        assert result.stage("runs").retried == []
        assert result.failures


class TestDeterminism:
    def test_serial_equals_pool(self):
        stages = lambda: [
            Stage("baseline", [_spec(), _spec()]),
            Stage("directed", [_spec(), _spec()], directives_from="baseline"),
        ]
        serial = Campaign(stages(), name="d").run(SerialExecutor())
        pooled = Campaign(stages(), name="d").run(PoolExecutor(2))
        def comparable(record):
            data = record.to_dict()
            data["metrics"] = deterministic_metrics(data["metrics"])
            return data

        serial_dicts = [comparable(r) for r in serial.records]
        pooled_dicts = [comparable(r) for r in pooled.records]
        assert serial_dicts == pooled_dicts


class TestCampaignSummaries:
    def test_pool_writers_store_fresh_summaries(self, tmp_path):
        """Concurrent campaign writers never leave a stale or missing
        summary: every stored record's index summary matches the record
        the campaign produced, and the extraction barrier harvested from
        the store's copies."""
        stages = [
            Stage("baseline", [_spec(), _spec()]),
            Stage("directed", [_spec(), _spec()], directives_from="baseline"),
        ]
        result = Campaign(stages, name="sumcamp").run(
            PoolExecutor(2), store=tmp_path / "runs"
        )
        store = ExperimentStore(tmp_path / "runs")
        metas = store.summaries()
        by_id = {r.run_id: r for r in result.records}
        assert set(metas) == set(by_id)
        for run_id, meta in metas.items():
            record = by_id[run_id]
            summary = meta["summary"]
            assert summary["true_pairs"] == [list(p) for p in record.true_pairs()]
            assert summary["duration"] == record.finish_time
            assert summary["status"] == record.status
        assert result.stages["directed"].harvested is not None
        assert len(result.stages["directed"].harvested) > 0

    def test_overwrite_updates_summary(self, tmp_path):
        """Re-running a campaign with overwrite refreshes the summaries."""
        stage = [Stage("baseline", [_spec(run_id="fixed")])]
        Campaign(stage, name="ow1").run(SerialExecutor(), store=tmp_path / "runs")
        store = ExperimentStore(tmp_path / "runs")
        first = store.summaries(run_ids=["fixed"])["fixed"]["summary"]
        stage2 = [Stage("baseline", [
            RunSpec(make_pingpong, builder_kwargs={"iterations": 90},
                    config=FAST, run_id="fixed"),
        ])]
        Campaign(stage2, name="ow2").run(
            SerialExecutor(), store=tmp_path / "runs", overwrite=True
        )
        second = store.summaries(run_ids=["fixed"])["fixed"]["summary"]
        assert second["duration"] != first["duration"]
        assert store.load("fixed").finish_time == second["duration"]
