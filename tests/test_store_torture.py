"""Crash-consistency torture in tier 1: a small seeded matrix of random
fault/kill schedules, plus targeted ENOSPC and SIGKILL strikes in the
middle of compaction and migration.  Every assertion message cites the
seed (and the ``run_schedule`` call for matrix failures), so a CI red
replays locally bit-for-bit."""

import pytest

from repro.faults import IOFault, IOFaultPlan, SimulatedCrash
from repro.faults import io as io_faults
from repro.resilience.torture import (
    TORTURE_BACKENDS,
    run_schedule,
    run_torture,
    store_view,
)
from repro.storage import ExperimentStore, RunRecord, migrate_store

FILE_BACKENDS = ("file", "file-legacy")


def _record(run_id: str, tag: int = 0) -> RunRecord:
    return RunRecord(
        run_id=run_id,
        app_name="torture",
        version="1",
        n_processes=1,
        nodes=["n0"],
        placement={"p0": "n0"},
        hierarchies={"Code": ["/Code"]},
        shg_nodes=[],
        profile={},
        finish_time=1.0 + tag,
        search_done_time=None,
        pairs_tested=tag,
        total_requests=tag,
        peak_cost=float(tag),
    )


def _build(root, backend, n=3) -> ExperimentStore:
    store = ExperimentStore(root, backend=backend, auto_compact=0,
                            resilience=False)
    for i in range(n):
        store.save(_record(f"r{i}", i))
    return store


def _reopen(root, backend) -> ExperimentStore:
    return ExperimentStore(root, backend=backend, auto_compact=0,
                           resilience=False, cache_size=0)


def _assert_payloads_load(store, context):
    for run_id in store.list():
        record = store.load(run_id)
        assert record.run_id == run_id, context


# ---------------------------------------------------------------------------
# the seeded matrix (a slice of the CI-scale campaign in benchmarks/)
# ---------------------------------------------------------------------------
def test_seeded_matrix_never_diverges(tmp_path):
    report = run_torture(TORTURE_BACKENDS, seeds=range(15), workdir=tmp_path)
    assert len(report.schedules) == 45
    for bad in report.divergences:
        pytest.fail(
            f"store diverged: backend={bad['backend']} seed={bad['seed']} "
            f"scenario={bad['scenario']} outcome={bad['outcome']} "
            f"faults={bad['faults_fired']} — reproduce with "
            f"run_schedule({bad['backend']!r}, {bad['seed']})"
        )


def _stable(result):
    """The path-insensitive shape of a schedule result: workdirs differ
    between runs, everything else must not."""
    out = {k: result[k] for k in ("backend", "seed", "scenario", "ops",
                                  "chain_len", "divergent")}
    out["outcome_kind"] = result["outcome"].split(":")[0]
    out["fired"] = [(op, idx, kind)
                    for op, idx, kind, _path in result["faults_fired"]]
    return out


@pytest.mark.parametrize("seed", range(6))
def test_single_schedule_is_deterministic(seed):
    a = _stable(run_schedule("file", seed))
    b = _stable(run_schedule("file", seed))
    assert a == b, f"run_schedule('file', {seed}) not reproducible"


# ---------------------------------------------------------------------------
# targeted: ENOSPC mid-compaction / mid-migration
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", FILE_BACKENDS)
def test_enospc_mid_compaction(tmp_path, backend):
    seed = 7001
    store = _build(tmp_path / backend, backend)
    before = store_view(store)
    plan = IOFaultPlan(seed=seed, faults=(
        IOFault(op="write", at=0, kind="enospc", times=99),
    ))
    with io_faults.injected(plan) as injector:
        with pytest.raises(Exception):
            store.compact()
    assert injector.injected, f"seed={seed}: plan never fired"
    reopened = _reopen(tmp_path / backend, backend)
    context = (f"backend={backend} seed={seed}: store inconsistent after "
               f"ENOSPC mid-compaction")
    assert store_view(reopened) == before, context
    _assert_payloads_load(reopened, context)


@pytest.mark.parametrize("backend", ("file", "sqlite"))
def test_enospc_mid_migration(tmp_path, backend):
    """Destination runs out of disk partway: the records that landed
    must be intact and in migration order — never a torn tail."""
    seed = 7002
    src = _build(tmp_path / "src", backend, n=4)
    dest_root = tmp_path / "dest"
    dest = ExperimentStore(dest_root, backend="file", auto_compact=0,
                           resilience=False)
    # strike the third record write in the destination store only
    plan = IOFaultPlan(seed=seed, faults=(
        IOFault(op="write", at=4, kind="enospc", times=99,
                path_part="dest"),
    ))
    with io_faults.injected(plan) as injector:
        with pytest.raises(Exception):
            migrate_store(src, dest)
    assert injector.injected, f"seed={seed}: plan never fired"
    reopened = _reopen(dest_root, "file")
    src_order = src.list()
    landed = reopened.list()
    context = (f"backend={backend} seed={seed}: destination inconsistent "
               f"after ENOSPC mid-migration (landed={landed})")
    assert landed == src_order[:len(landed)], context
    assert len(landed) < len(src_order), context
    _assert_payloads_load(reopened, context)
    # the source is read-only in a migration: bit-for-bit untouched
    assert store_view(_reopen(tmp_path / "src", backend)) == store_view(src), \
        context


# ---------------------------------------------------------------------------
# targeted: SIGKILL mid-compaction / mid-migration
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend,op", [
    ("file", "replace"),
    ("file-legacy", "replace"),
    ("sqlite", "sqlite"),
])
def test_kill_mid_compaction(tmp_path, backend, op):
    """Compaction preserves the logical view, so a kill at any of its
    syscall boundaries must leave the reopened view exactly as before."""
    seed = 7003
    store = _build(tmp_path / backend, backend)
    before = store_view(store)
    plan = IOFaultPlan(seed=seed, faults=(
        IOFault(op=op, at=0, kind="crash"),
    ))
    with io_faults.injected(plan) as injector:
        with pytest.raises(SimulatedCrash):
            store.compact()
    assert injector.injected, f"seed={seed}: plan never fired"
    # the in-memory store died with the "process"; reopen from disk
    reopened = _reopen(tmp_path / backend, backend)
    context = (f"backend={backend} seed={seed}: store inconsistent after "
               f"kill mid-compaction")
    assert store_view(reopened) == before, context
    _assert_payloads_load(reopened, context)


@pytest.mark.parametrize("backend,op,at", [
    ("file", "replace", 3),
    ("sqlite", "sqlite", 6),
])
def test_kill_mid_migration(tmp_path, backend, op, at):
    """Kill the *destination* writer partway through a migration: the
    destination must hold an intact prefix, the source must be intact."""
    seed = 7004
    src = _build(tmp_path / "src", "file", n=4)
    src_before = store_view(src)
    dest_root = tmp_path / "dest"
    dest = ExperimentStore(dest_root, backend=backend, auto_compact=0,
                           resilience=False)
    plan = IOFaultPlan(seed=seed, faults=(
        IOFault(op=op, at=at, kind="crash", path_part="dest"),
    ))
    with io_faults.injected(plan) as injector:
        with pytest.raises(SimulatedCrash):
            migrate_store(src, dest)
    assert injector.injected, f"seed={seed}: plan never fired"
    reopened = _reopen(dest_root, backend)
    src_order = src.list()
    landed = reopened.list()
    context = (f"backend={backend} seed={seed}: destination inconsistent "
               f"after kill mid-migration (landed={landed})")
    assert landed == src_order[:len(landed)], context
    assert len(landed) < len(src_order), context
    _assert_payloads_load(reopened, context)
    assert store_view(_reopen(tmp_path / "src", "file")) == src_before, context
