"""The structured trace: schema round-trip, bounded buffer, replay."""

import io
import json

import pytest

from repro.apps.poisson import PoissonConfig, build_poisson
from repro.core import SearchConfig
from repro.core.consultant import DiagnosisSession
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    TraceError,
    TraceEvent,
    Tracer,
    read_trace,
    replay_conclusions,
    write_trace,
)

FAST = SearchConfig(min_interval=5.0, check_period=0.5, insertion_latency=0.5,
                    cost_limit=50.0)


def traced_run(iterations=8):
    tracer = Tracer()
    record = DiagnosisSession(
        app=build_poisson("C", PoissonConfig(iterations=iterations)),
        config=FAST, run_id="traced", tracer=tracer,
    ).run()
    return record, tracer


class TestTracer:
    def test_emit_stamps_clock(self):
        t = [0.0]
        tracer = Tracer(clock=lambda: t[0])
        tracer.emit("progress", cost=1.0)
        t[0] = 7.5
        tracer.emit("progress", cost=2.0)
        assert [e.t for e in tracer.events()] == [0.0, 7.5]

    def test_capacity_counts_drops(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit("progress", i=i)
        assert len(tracer.events()) == 3
        assert tracer.dropped == 2
        assert tracer.count == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(TraceError):
            Tracer(capacity=0)

    def test_stream_survives_buffer_overflow(self):
        sink = io.StringIO()
        tracer = Tracer(capacity=2, stream=sink)
        for i in range(5):
            tracer.emit("progress", i=i)
        lines = sink.getvalue().splitlines()
        assert json.loads(lines[0])["kind"] == "trace-header"
        assert len(lines) == 6  # header + every event, drops included
        assert tracer.dropped == 3

    def test_kind_filter(self):
        tracer = Tracer()
        tracer.emit("progress", i=0)
        tracer.emit("gate-halt", total=9.0)
        assert [e.kind for e in tracer.events("gate-halt")] == ["gate-halt"]


class TestRoundTrip:
    def test_write_read_preserves_events(self, tmp_path):
        events = [
            TraceEvent(t=0.0, kind="run-start", data={"run_id": "r"}),
            TraceEvent(t=1.5, kind="node-queued",
                       data={"node": 1, "hypothesis": "CPUbound", "focus": "/"}),
        ]
        path = write_trace(events, tmp_path / "t.jsonl")
        assert read_trace(path) == events

    def test_header_carries_schema_and_drops(self, tmp_path):
        path = write_trace([], tmp_path / "t.jsonl", dropped=4)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"kind": "trace-header",
                          "schema": TRACE_SCHEMA_VERSION, "dropped": 4}

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0.0, "kind": "progress"}\n')
        with pytest.raises(TraceError, match="not a trace header"):
            read_trace(path)

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"kind": "trace-header", "schema": TRACE_SCHEMA_VERSION + 1}) + "\n")
        with pytest.raises(TraceError, match="schema"):
            read_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            read_trace(path)

    def test_torn_final_line_dropped(self, tmp_path):
        events = [TraceEvent(t=0.0, kind="run-start", data={})]
        path = write_trace(events, tmp_path / "t.jsonl")
        with path.open("a") as fh:
            fh.write('{"t": 3.0, "kind": "progr')  # crash mid-append
        assert read_trace(path) == events

    def test_torn_middle_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"kind": "trace-header", "schema": TRACE_SCHEMA_VERSION,
                        "dropped": 0}) + "\n"
            + '{"t": 0.0, "kind"\n'
            + '{"t": 1.0, "kind": "run-end"}\n'
        )
        with pytest.raises(TraceError, match="bad trace line"):
            read_trace(path)


class TestReplay:
    def test_replay_matches_record_conclusions(self):
        record, tracer = traced_run()
        replayed = replay_conclusions(tracer.events())
        actual = {
            (n["hypothesis"], n["focus"]): n["state"] for n in record.shg_nodes
        }
        assert replayed == actual

    def test_replay_survives_file_round_trip(self, tmp_path):
        record, tracer = traced_run()
        path = tracer.write(tmp_path / "run.jsonl")
        assert replay_conclusions(read_trace(path)) == replay_conclusions(
            tracer.events()
        )

    def test_virtual_timestamps_monotonic(self):
        _, tracer = traced_run()
        times = [e.t for e in tracer.events()]
        assert times == sorted(times)

    def test_untraced_run_matches_traced(self):
        """Attaching a tracer must not perturb the diagnosis itself."""
        traced, _ = traced_run()
        untraced = DiagnosisSession(
            app=build_poisson("C", PoissonConfig(iterations=8)),
            config=FAST, run_id="traced",
        ).run()
        assert untraced.shg_nodes == traced.shg_nodes
        assert untraced.finish_time == traced.finish_time
