"""Tests for the ASCII figure renderers."""

from repro.apps.poisson import PoissonConfig, build_poisson, version_maps
from repro.apps.synthetic import make_pingpong
from repro.apps.tester import TesterConfig, build_tester
from repro.core import SearchConfig, run_diagnosis
from repro.core.shg import NodeState
from repro.metrics import CostModel
from repro.visualize import (
    render_combined_spaces,
    render_hierarchy,
    render_shg,
    render_space,
)

FAST = SearchConfig(min_interval=5.0, check_period=0.5, insertion_latency=0.2, cost_limit=50.0)


class TestHierarchyRendering:
    def test_tester_figure1(self):
        space = build_tester(TesterConfig(iterations=5)).make_space()
        text = render_space(space)
        for label in ("Code", "Machine", "Process", "testutil.C", "verifya",
                      "vect::addel", "CPU_3", "Tester:2"):
            assert label in text

    def test_tree_connectors(self):
        space = build_tester(TesterConfig(iterations=5)).make_space()
        text = render_hierarchy(space.hierarchy("Code"))
        assert "|--" in text and "`--" in text

    def test_tags_rendered(self):
        space = build_tester(TesterConfig(iterations=5)).make_space()
        space.hierarchy("Code").add("/Code/main.c/main", tag="r1")
        text = render_hierarchy(space.hierarchy("Code"), tags=True)
        assert "{r1}" in text


class TestSHGRendering:
    def test_states_marked(self):
        rec = run_diagnosis(
            make_pingpong(iterations=60), config=FAST,
            cost_model=CostModel(perturb_per_unit=0.0),
        )
        text = render_shg(rec.shg())
        assert "[T]" in text and "[f]" in text
        assert "ExcessiveSyncWaitingTime" in text

    def test_depth_limit(self):
        rec = run_diagnosis(
            make_pingpong(iterations=60), config=FAST,
            cost_model=CostModel(perturb_per_unit=0.0),
        )
        shallow = render_shg(rec.shg(), max_depth=1)
        full = render_shg(rec.shg())
        assert len(shallow.splitlines()) <= len(full.splitlines())

    def test_state_filter(self):
        rec = run_diagnosis(
            make_pingpong(iterations=60), config=FAST,
            cost_model=CostModel(perturb_per_unit=0.0),
        )
        only_true = render_shg(rec.shg(), states=[NodeState.TRUE])
        assert "[f]" not in only_true


class TestCombinedSpaces:
    def test_figure3_layout(self):
        cfg = PoissonConfig(iterations=5)
        a = build_poisson("A", cfg)
        b = build_poisson("B", cfg)
        maps = version_maps("A", "B", a, b)
        text = render_combined_spaces(a.make_space(), b.make_space(), maps)
        assert "oned.f [1]" in text       # unique to A
        assert "onednb.f [2]" in text     # unique to B
        assert "diff.f [3]" in text       # common
        assert "map /Code/oned.f /Code/onednb.f" in text
        assert "Mappings Used" in text
