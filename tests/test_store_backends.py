"""Backend equivalence: file, file-legacy, and SQLite stores must answer
queries byte-identically, and records must migrate between them without
changing what history-directed search harvests."""

import json

import pytest

from repro import diagnose, harvest
from repro.apps.synthetic import make_pingpong
from repro.storage import (
    ExperimentStore,
    RunRecord,
    StoreCorruption,
    migrate_store,
)

FAST = dict(min_interval=5.0, check_period=0.5, insertion_latency=0.2,
            cost_limit=50.0)

BACKENDS = ("file", "file-legacy", "sqlite")


def _tiny_record(run_id: str, app_name: str, version: str) -> RunRecord:
    return RunRecord(
        run_id=run_id,
        app_name=app_name,
        version=version,
        n_processes=1,
        nodes=["n0"],
        placement={"p0": "n0"},
        hierarchies={"Code": ["/Code"]},
        shg_nodes=[],
        profile={},
        finish_time=1.0,
        search_done_time=None,
        pairs_tested=0,
        total_requests=0,
        peak_cost=0.0,
    )


@pytest.fixture(scope="module")
def corpus():
    """A mixed record set: two real diagnoses (whose summaries harvest
    into non-empty directive sets) plus filtering fodder."""
    real = [
        diagnose(make_pingpong(iterations=60), run_id=f"ping-{i}", **FAST)
        for i in range(2)
    ]
    tiny = [
        _tiny_record("t-a1", "tiny", "A"),
        _tiny_record("t-a2", "tiny", "A"),
        _tiny_record("t-b1", "tiny", "B"),
    ]
    return real + tiny


@pytest.fixture()
def stores(tmp_path, corpus):
    out = {}
    for backend in BACKENDS:
        store = ExperimentStore(tmp_path / backend, backend=backend)
        for record in corpus:
            store.save(record)
        out[backend] = store
    return out


def _canon(mapping):
    return json.dumps(mapping, sort_keys=True)


class TestCrossBackendEquivalence:
    def test_summaries_byte_identical(self, stores):
        views = {
            name: _canon(store.summaries()) for name, store in stores.items()
        }
        assert len(set(views.values())) == 1, sorted(views)

    def test_filtered_queries_byte_identical(self, stores):
        for kwargs in (
            {"app_name": "tiny"},
            {"app_name": "tiny", "version": "A"},
            {"app_name": "pingpong"},
            {"app_name": "ghost"},
        ):
            views = {
                name: _canon(store.index_entries(**kwargs))
                for name, store in stores.items()
            }
            assert len(set(views.values())) == 1, (kwargs, sorted(views))

    def test_run_id_lookup_order_and_misses_match(self, stores):
        ids = ["t-b1", "ping-0", "missing", "t-a1"]
        views = {
            name: _canon(store.summaries(run_ids=[i for i in ids
                                                  if i != "missing"]))
            for name, store in stores.items()
        }
        assert len(set(views.values())) == 1
        for store in stores.values():
            entries = store.backend.query_summaries(run_ids=ids)
            assert list(entries) == ids
            assert entries["missing"] is None

    def test_harvested_directives_byte_identical(self, stores):
        texts = {
            name: harvest(store, app="pingpong",
                          include_thresholds=True).to_text()
            for name, store in stores.items()
        }
        assert len(set(texts.values())) == 1
        assert "prune" in texts["file"] or "priority" in texts["file"]

    def test_loaded_records_identical(self, stores, corpus):
        for record in corpus:
            payloads = {
                name: _canon(store.load(record.run_id).to_dict())
                for name, store in stores.items()
            }
            assert len(set(payloads.values())) == 1

    def test_list_and_len_match(self, stores, corpus):
        for store in stores.values():
            assert len(store) == len(corpus)
            assert store.list() == [r.run_id for r in corpus]


class TestMigration:
    def test_file_to_sqlite_round_trip(self, tmp_path, stores, corpus):
        source = stores["file"]
        dest = ExperimentStore(tmp_path / "migrated", backend="sqlite")
        assert migrate_store(source, dest) == len(corpus)
        assert _canon(dest.summaries()) == _canon(source.summaries())
        assert (
            harvest(dest, app="pingpong").to_text()
            == harvest(source, app="pingpong").to_text()
        )

    def test_sqlite_back_to_file(self, tmp_path, stores):
        source = stores["sqlite"]
        dest = ExperimentStore(tmp_path / "back", backend="file")
        migrate_store(source, dest)
        assert _canon(dest.summaries()) == _canon(source.summaries())

    def test_duplicate_ids_need_overwrite(self, tmp_path, stores):
        source = stores["file"]
        dest = ExperimentStore(tmp_path / "dup", backend="sqlite")
        migrate_store(source, dest)
        from repro.storage import StoreError

        with pytest.raises(StoreError):
            migrate_store(source, dest)
        assert migrate_store(source, dest, overwrite=True) == len(source)


class TestSQLiteIntegrity:
    def test_corrupt_payload_quarantined(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", backend="sqlite",
                                cache_size=0)
        store.save(_tiny_record("good", "tiny", "A"))
        store.save(_tiny_record("bad", "tiny", "A"))
        conn = store.backend._conn
        conn.execute(
            "UPDATE runs SET payload = ? WHERE run_id = ?",
            (json.dumps({"run_id": "bad", "tampered": True}), "bad"),
        )
        with pytest.raises(StoreCorruption, match="quarantine"):
            store.load("bad")
        # quarantined: gone from the index, preserved in the quarantine table
        assert store.list() == ["good"]
        rows = conn.execute(
            "SELECT run_id, reason FROM quarantine"
        ).fetchall()
        assert rows and rows[0][0] == "bad"

    def test_rebuild_quarantines_bad_rows(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", backend="sqlite")
        store.save(_tiny_record("good", "tiny", "A"))
        store.save(_tiny_record("bad", "tiny", "A"))
        store.backend._conn.execute(
            "UPDATE runs SET payload = 'not json' WHERE run_id = 'bad'"
        )
        report = store.rebuild_index()
        assert report.kept == ["good"]
        assert len(report.quarantined) == 1
        assert store.list() == ["good"]

    def test_compact_is_vacuum(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", backend="sqlite")
        store.save(_tiny_record("r0", "tiny", "A"))
        stats = store.compact()
        assert stats.entries == 1
        assert store.list() == ["r0"]

    def test_overwrite_bumps_record_token(self, tmp_path):
        store = ExperimentStore(tmp_path / "runs", backend="sqlite")
        store.save(_tiny_record("r0", "tiny", "A"))
        cached = store.load("r0")
        store.save(_tiny_record("r0", "tiny", "B"), overwrite=True)
        assert store.load("r0").version == "B"
        assert store.load("r0") is not cached
        # seq preserved across the overwrite
        assert store._read_index()["r0"]["seq"] == 0
